"""Tests for the multi-strategy process-pool fan-out (`repro.sim.parallel`)."""

import pytest

from repro.sim import STRATEGIES, compare_strategies, run_one_strategy


class TestValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            run_one_strategy("min-only-median", hours=1)

    def test_unknown_strategies_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown strategies"):
            compare_strategies(strategies=("capping", "nope"), hours=1)

    def test_empty_strategies_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            compare_strategies(strategies=(), hours=1)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            compare_strategies(strategies=("capping",), workers=0, hours=1)


class TestEquivalence:
    def test_parallel_matches_serial(self):
        """The pool only changes *where* each strategy runs; every worker
        regenerates the identical seed-keyed world, so results match the
        in-process run exactly."""
        strategies = ("capping", "min-only-avg")
        kwargs = dict(policy_id=1, seed=7, hours=2, strategies=strategies)
        serial = compare_strategies(workers=1, **kwargs)
        parallel = compare_strategies(workers=2, **kwargs)
        assert set(serial) == set(parallel) == set(strategies)
        for name in strategies:
            s, p = serial[name].summary(), parallel[name].summary()
            assert s == p

    def test_result_order_follows_request(self):
        res = compare_strategies(
            strategies=("min-only-avg", "capping"), hours=1
        )
        assert list(res) == ["min-only-avg", "capping"]

    def test_all_strategies_listed(self):
        assert STRATEGIES[0] == "capping"
        assert all(s.startswith("min-only-") for s in STRATEGIES[1:])
