"""Tests for the multi-strategy process-pool fan-out (`repro.sim.parallel`)."""

import pytest

from repro.sim import (
    STRATEGIES,
    compare_strategies,
    resolve_monthly_budget,
    run_one_strategy,
)


class TestValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            run_one_strategy("min-only-median", hours=1)

    def test_unknown_strategies_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown strategies"):
            compare_strategies(strategies=("capping", "nope"), hours=1)

    def test_empty_strategies_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            compare_strategies(strategies=(), hours=1)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            compare_strategies(strategies=("capping",), workers=0, hours=1)


class TestEquivalence:
    def test_parallel_matches_serial(self):
        """The pool only changes *where* each strategy runs; every worker
        regenerates the identical seed-keyed world, so results match the
        in-process run exactly."""
        strategies = ("capping", "min-only-avg")
        kwargs = dict(policy_id=1, seed=7, hours=2, strategies=strategies)
        serial = compare_strategies(workers=1, **kwargs)
        parallel = compare_strategies(workers=2, **kwargs)
        assert set(serial) == set(parallel) == set(strategies)
        for name in strategies:
            s, p = serial[name].summary(), parallel[name].summary()
            assert s == p

    def test_result_order_follows_request(self):
        res = compare_strategies(
            strategies=("min-only-avg", "capping"), hours=1
        )
        assert list(res) == ["min-only-avg", "capping"]

    def test_all_strategies_listed(self):
        assert STRATEGIES[0] == "capping"
        assert all(s.startswith("min-only-") for s in STRATEGIES[1:])


class TestAnchorResolvedOnce:
    """`budget_fraction` comparisons resolve the uncapped anchor month a
    single time in `compare_strategies`; the scaled monthly budget rides
    in the task payload instead of each pool worker re-running it."""

    HOURS = 6

    def test_monthly_budget_ships_in_payload(self, monkeypatch):
        import repro.sim.parallel as parallel

        calls = []
        original = parallel.resolve_monthly_budget

        def counting(world, fraction, hours=168, engine=None):
            calls.append(fraction)
            return original(world, fraction, hours=hours, engine=engine)

        monkeypatch.setattr(parallel, "resolve_monthly_budget", counting)
        compare_strategies(
            strategies=("capping", "min-only-avg"),
            hours=self.HOURS,
            budget_fraction=0.8,
        )
        assert len(calls) == 1

    def test_shipped_budget_matches_local_anchor(self):
        """A worker handed the resolved budget produces the same result
        as one that computes its own anchor from the fraction."""
        compared = compare_strategies(
            strategies=("capping",), hours=self.HOURS, budget_fraction=0.8
        )["capping"]
        solo = run_one_strategy(
            "capping", hours=self.HOURS, budget_fraction=0.8
        )
        assert [h.to_dict() for h in compared.hours] == [
            h.to_dict() for h in solo.hours
        ]

    def test_budgeted_parallel_matches_serial(self):
        kwargs = dict(
            strategies=("capping", "min-only-avg"),
            hours=self.HOURS,
            budget_fraction=0.8,
        )
        serial = compare_strategies(workers=1, **kwargs)
        parallel = compare_strategies(workers=2, **kwargs)
        for name in kwargs["strategies"]:
            assert serial[name].summary() == parallel[name].summary()

    def test_price_takers_skip_the_anchor(self, monkeypatch):
        import repro.sim.parallel as parallel

        def exploding(*a, **k):
            raise AssertionError("anchor run for a price-taker-only set")

        monkeypatch.setattr(parallel, "resolve_monthly_budget", exploding)
        res = compare_strategies(
            strategies=("min-only-avg",), hours=2, budget_fraction=0.8
        )
        assert len(res["min-only-avg"].hours) == 2

    def test_resolve_scales_anchor_to_month(self):
        from repro.experiments import paper_world
        from repro.sim import Engine

        world = paper_world(max_servers=500_000, seed=3)
        engine = Engine(world.sites, world.workload, world.mix)
        anchor = engine.run("capping", hours=self.HOURS)
        expected = anchor.total_cost * world.hours / self.HOURS * 0.5
        got = resolve_monthly_budget(
            world, 0.5, hours=self.HOURS, engine=engine
        )
        assert got == pytest.approx(expected)
