"""Scenario-sweep engine: grid order, determinism, serial == parallel.

``run_sweep`` is the one fan-out path every batch experiment routes
through; these tests pin the contracts the callers rely on: scenario
order is preserved, the serial and pooled paths return identical
values, counters recorded inside scenarios merge back into the ambient
telemetry bundle at any worker count, the shared payload reaches every
task, and derived seeds are stable across processes.
"""

import numpy as np
import pytest

from repro.sim import derive_seed, run_sweep, sweep_grid
from repro.sim.sweep import strategy_metric
from repro.telemetry import Telemetry, use_telemetry


def square_metric(scenario, payload):
    """Module-level so the pooled path can pickle it."""
    from repro.telemetry import get_telemetry

    get_telemetry().counter("test.sweep.calls").inc()
    offset = payload["offset"] if payload else 0.0
    return scenario["x"] ** 2 + offset


def seeded_metric(scenario, payload):
    rng = np.random.default_rng(derive_seed(7, scenario["i"]))
    return float(rng.uniform())


class TestSweepGrid:
    def test_cartesian_product_in_axis_order(self):
        grid = sweep_grid(a=[1, 2], b=["x", "y"], c=[0.5])
        assert grid == [
            {"a": 1, "b": "x", "c": 0.5},
            {"a": 1, "b": "y", "c": 0.5},
            {"a": 2, "b": "x", "c": 0.5},
            {"a": 2, "b": "y", "c": 0.5},
        ]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            sweep_grid(a=[1], b=[])
        with pytest.raises(ValueError):
            sweep_grid()


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)
        seen = {derive_seed(7, i) for i in range(100)}
        assert len(seen) == 100
        assert derive_seed(7, 1) != derive_seed(8, 1)

    def test_fits_in_32_bits(self):
        for i in range(20):
            assert 0 <= derive_seed(1, i) < 2**32


class TestRunSweep:
    def test_values_in_scenario_order(self):
        scenarios = [{"x": x} for x in (3.0, 1.0, 2.0)]
        assert run_sweep(square_metric, scenarios) == [9.0, 1.0, 4.0]

    def test_payload_reaches_every_task(self):
        scenarios = [{"x": x} for x in (1.0, 2.0)]
        got = run_sweep(square_metric, scenarios, payload={"offset": 10.0})
        assert got == [11.0, 14.0]

    def test_serial_equals_parallel(self):
        scenarios = [{"x": float(x)} for x in range(8)]
        serial = run_sweep(square_metric, scenarios, workers=1)
        pooled = run_sweep(square_metric, scenarios, workers=2)
        assert serial == pooled

    def test_serial_equals_parallel_with_derived_seeds(self):
        scenarios = [{"i": i} for i in range(6)]
        serial = run_sweep(seeded_metric, scenarios, workers=1)
        pooled = run_sweep(seeded_metric, scenarios, workers=3, chunksize=1)
        assert serial == pooled

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep(square_metric, [])
        with pytest.raises(ValueError):
            run_sweep(square_metric, [{"x": 1.0}], workers=0)


class TestCounterMerge:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_counters_survive_the_pool(self, workers):
        scenarios = [{"x": float(x)} for x in range(5)]
        tel = Telemetry()
        with use_telemetry(tel):
            run_sweep(square_metric, scenarios, workers=workers)
        assert tel.registry.counter("test.sweep.calls").value == 5

    def test_scenarios_do_not_see_ambient_telemetry(self):
        # Tasks run under their own bundle even serially, so parallel
        # and serial runs observe identical telemetry state.
        tel = Telemetry()
        with use_telemetry(tel):
            tel.counter("test.sweep.calls").inc(100)
            run_sweep(square_metric, [{"x": 1.0}], workers=1)
        # 100 pre-existing + 1 merged from the scenario.
        assert tel.registry.counter("test.sweep.calls").value == 101

    def test_no_ambient_bundle_is_fine(self):
        assert run_sweep(square_metric, [{"x": 2.0}]) == [4.0]


class TestStrategyMetric:
    def test_runs_one_strategy(self):
        res = strategy_metric(
            {"strategy": "min-only-avg", "seed": 7, "hours": 6}
        )
        assert res.total_cost > 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            strategy_metric({"strategy": "nope"})
