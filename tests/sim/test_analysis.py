"""Tests for the analysis utilities (`repro.sim.analysis`)."""

import numpy as np
import pytest

from repro.core import CappingStep
from repro.sim import (
    SimulationResult,
    budget_adherence,
    compare,
    format_comparison,
    price_level_occupancy,
    savings,
    site_breakdown,
)

from .test_records import make_hour


def _result(costs, name="r", **kwargs):
    r = SimulationResult(name)
    for i, c in enumerate(costs):
        r.append(make_hour(hour=i, realized=c, **kwargs))
    return r


class TestSavings:
    def test_basic(self):
        a = _result([80.0, 80.0])
        b = _result([100.0, 100.0])
        assert savings(a, b) == pytest.approx(0.2)

    def test_negative_when_worse(self):
        assert savings(_result([120.0]), _result([100.0])) == pytest.approx(-0.2)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            savings(_result([1.0]), _result([0.0]))


class TestBudgetAdherence:
    def test_all_within(self):
        r = _result([50.0, 60.0], budget=100.0)
        adh = budget_adherence(r, monthly_budget=1000.0)
        assert adh.hours_over == 0
        assert adh.within_monthly_budget
        assert adh.utilization == pytest.approx(0.11)
        assert adh.worst_hourly_overshoot == 0.0

    def test_violations_classified(self):
        r = SimulationResult("v")
        r.append(make_hour(hour=0, realized=150.0, budget=100.0,
                           step=CappingStep.PREMIUM_ONLY))
        r.append(make_hour(hour=1, realized=120.0, budget=100.0,
                           step=CappingStep.THROUGHPUT_MAX))
        r.append(make_hour(hour=2, realized=90.0, budget=100.0))
        adh = budget_adherence(r, monthly_budget=300.0)
        assert adh.hours_over == 2
        assert adh.mandatory_hours_over == 1
        assert adh.worst_hourly_overshoot == pytest.approx(50.0)
        assert not adh.within_monthly_budget

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            budget_adherence(_result([1.0]), 0.0)


class TestSiteBreakdown:
    def test_single_site_totals(self):
        r = _result([100.0, 100.0])  # make_hour: 5 MW @ price 10 per hour
        bd = site_breakdown(r)
        assert set(bd) == {"DC1"}
        assert bd["DC1"]["energy_mwh"] == pytest.approx(10.0)
        assert bd["DC1"]["cost"] == pytest.approx(200.0)
        assert bd["DC1"]["cost_share"] == pytest.approx(1.0)
        assert bd["DC1"]["mean_price"] == pytest.approx(20.0)


class TestPriceLevelOccupancy:
    def test_counts_levels(self):
        from repro.core import Site
        from repro.datacenter import CoolingModel, DataCenter, ServerSpec, SwitchPowers
        from repro.powermarket import SteppedPricingPolicy
        from repro.sim import Simulator
        from repro.workload import CustomerMix, Trace

        dc = DataCenter(
            name="DC1",
            servers=ServerSpec.from_operating_point("s", 100.0, 500.0),
            max_servers=50_000,
            switch_powers=SwitchPowers(184.0, 184.0, 240.0),
            cooling=CoolingModel(1.94),
            target_response_s=0.5,
        )
        policy = SteppedPricingPolicy("DC1", (3.0, 6.0), (10.0, 20.0, 30.0))
        site = Site(dc, policy, np.full(8, 1.0))
        wl = Trace(np.full(8, 5e6))
        sim = Simulator([site], wl, CustomerMix())
        res = sim.run_capping(hours=8)
        occ = price_level_occupancy(res, [site])
        assert occ["DC1"].sum() == 8
        assert occ["DC1"].shape == (3,)

    def test_unknown_site_rejected(self):
        r = _result([1.0])
        with pytest.raises(KeyError):
            price_level_occupancy(r, [])


class TestCompare:
    def test_rows_and_format(self):
        rows = compare({"a": _result([100.0]), "b": _result([150.0])})
        by_name = {r["strategy"]: r for r in rows}
        assert by_name["a"]["vs_cheapest"] == pytest.approx(0.0)
        assert by_name["b"]["vs_cheapest"] == pytest.approx(0.5)
        text = format_comparison({"a": _result([100.0]), "b": _result([150.0])})
        assert "strategy" in text and "a" in text and "b" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare({})
