"""Tests for the multi-seed study utilities."""

import numpy as np
import pytest

from repro.sim import SeedStudy, run_study, savings_study


class TestSeedStudy:
    def test_aggregates(self):
        study = SeedStudy("s", (1, 2, 3, 4), np.array([1.0, 2.0, 3.0, 4.0]))
        assert study.mean == pytest.approx(2.5)
        assert study.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert study.min == 1.0 and study.max == 4.0

    def test_single_seed_std_zero(self):
        study = SeedStudy("s", (1,), np.array([5.0]))
        assert study.std == 0.0
        lo, hi = study.confidence_interval()
        assert lo == hi == 5.0

    def test_ci_contains_mean(self):
        study = SeedStudy("s", (1, 2, 3), np.array([1.0, 2.0, 3.0]))
        lo, hi = study.confidence_interval()
        assert lo <= study.mean <= hi

    def test_str(self):
        s = str(SeedStudy("metric", (1, 2), np.array([0.1, 0.2])))
        assert "metric" in s and "mean=" in s

    def test_validation(self):
        with pytest.raises(ValueError):
            SeedStudy("s", (1, 2), np.array([1.0]))
        with pytest.raises(ValueError):
            SeedStudy("s", (), np.array([]))


def _square(seed: int) -> float:  # module-level: picklable for workers>1
    return float(seed**2)


class TestRunStudy:
    def test_deterministic_metric(self):
        study = run_study("sq", lambda seed: seed**2, [1, 2, 3])
        assert study.values.tolist() == [1.0, 4.0, 9.0]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_study("x", lambda s: 0.0, [])

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            run_study("x", _square, [1], workers=0)

    def test_parallel_matches_serial(self):
        serial = run_study("sq", _square, [1, 2, 3, 4], workers=1)
        parallel = run_study("sq", _square, [1, 2, 3, 4], workers=2)
        assert parallel.values.tolist() == serial.values.tolist()

    @pytest.mark.slow
    def test_parallel_savings_study_matches_serial(self):
        serial = savings_study(seeds=(1, 2), hours=12, max_servers=500_000)
        parallel = savings_study(
            seeds=(1, 2), hours=12, max_servers=500_000, workers=2
        )
        assert parallel.values.tolist() == pytest.approx(serial.values.tolist())


class TestSavingsStudy:
    @pytest.mark.slow
    def test_savings_positive_across_seeds(self):
        # Default (price-maker-regime) fleet: the headline claim must be
        # seed-robust — positive, double-digit-ish savings on every seed.
        study = savings_study(seeds=(1, 2, 3), hours=48)
        assert study.min > 0.0
        assert 0.05 < study.mean < 0.5
        assert study.values.size == 3
