"""Checkpoint/resume equivalence for engine runs.

The contract: a run killed after any settled hour and resumed from its
checkpoint produces a result **field-for-field identical** to the run
that was never interrupted — same steps, same costs, same per-site
records, same budgeter trajectory — with and without fault injection.
"""

import json

import pytest

from repro.experiments import paper_world
from repro.resilience import DegradationPolicy, FaultInjector, FaultSpec
from repro.sim import Engine
from repro.sim.engine import CHECKPOINT_VERSION

HOURS = 12

CHAOS = FaultSpec(
    price_stale=0.3,
    sensor_dropout=0.2,
    solver_error=0.3,
    solver_timeout=0.1,
    budget_loss=0.2,
    seed=11,
)


@pytest.fixture(scope="module")
def world():
    return paper_world(max_servers=500_000, seed=3)


@pytest.fixture(scope="module")
def engine(world):
    return Engine(world.sites, world.workload, world.mix)


def monthly(world, engine):
    anchor = engine.run("capping", hours=HOURS)
    return anchor.total_cost * world.hours / HOURS * 0.8


def assert_identical(resumed, reference):
    assert resumed.name == reference.name
    assert len(resumed.hours) == len(reference.hours)
    for a, b in zip(resumed.hours, reference.hours):
        assert a.to_dict() == b.to_dict()


class TestResumeBitIdentity:
    @pytest.mark.parametrize("kill_at", [1, 5, HOURS - 1])
    def test_capped_run_resumes_identically(self, world, engine, tmp_path, kill_at):
        budget = monthly(world, engine)
        reference = engine.run(
            "capping", budgeter=world.budgeter(budget), hours=HOURS
        )
        path = tmp_path / "run.json"
        engine.run(
            "capping",
            budgeter=world.budgeter(budget),
            hours=kill_at,
            checkpoint_path=path,
        )
        # The stored horizon is the killed run's; extend it on resume.
        resumed = engine.resume(path, hours=HOURS)
        assert_identical(resumed, reference)

    @pytest.mark.parametrize("kill_at", [3, 7])
    def test_faulted_run_resumes_identically(self, world, engine, tmp_path, kill_at):
        """Fault schedules are keyed by (seed, hour), the budgeter and the
        capper's hold-last history ride in the checkpoint — so chaos runs
        resume exactly too, degraded hours included."""
        budget = monthly(world, engine)
        kwargs = dict(hours=HOURS, degradation=DegradationPolicy.HOLD_LAST)
        reference = engine.run(
            "capping",
            budgeter=world.budgeter(budget),
            faults=FaultInjector(CHAOS),
            **kwargs,
        )
        assert reference.degraded_hours > 0  # chaos actually bites
        path = tmp_path / "chaos.json"
        engine.run(
            "capping",
            budgeter=world.budgeter(budget),
            faults=FaultInjector(CHAOS),
            hours=kill_at,
            checkpoint_path=path,
            degradation=DegradationPolicy.HOLD_LAST,
        )
        resumed = engine.resume(path, hours=HOURS)
        assert_identical(resumed, reference)

    def test_uncapped_price_taker_resumes_identically(self, engine, tmp_path):
        reference = engine.run("min-only-avg", hours=8)
        path = tmp_path / "minonly.json"
        engine.run("min-only-avg", hours=4, checkpoint_path=path)
        resumed = engine.resume(path, hours=8)
        assert_identical(resumed, reference)

    def test_resumed_run_keeps_checkpointing(self, engine, tmp_path):
        path = tmp_path / "run.json"
        engine.run("capping", hours=3, checkpoint_path=path)
        engine.resume(path, hours=6)
        payload = json.loads(path.read_text())
        assert payload["next_hour"] == 6
        assert len(payload["records"]) == 6

    def test_chained_resumes(self, engine, tmp_path):
        """Resume-of-a-resume still lands on the uninterrupted result."""
        reference = engine.run("capping", hours=9)
        path = tmp_path / "run.json"
        engine.run("capping", hours=3, checkpoint_path=path)
        engine.resume(path, hours=6)
        resumed = engine.resume(path, hours=9)
        assert_identical(resumed, reference)


class TestCheckpointPayload:
    def test_payload_shape(self, world, engine, tmp_path):
        path = tmp_path / "run.json"
        engine.run(
            "capping",
            budgeter=world.budgeter(monthly(world, engine)),
            hours=2,
            checkpoint_path=path,
            checkpoint_meta={"policy": 1, "seed": 3},
        )
        payload = Engine.load_checkpoint(path)
        assert payload["version"] == CHECKPOINT_VERSION
        assert payload["kind"] == "engine-run"
        assert payload["strategy"] == "capping"
        assert payload["result_name"] == "cost-capping"
        assert payload["next_hour"] == 2
        assert len(payload["records"]) == 2
        assert payload["budgeter"] is not None
        assert payload["meta"] == {"policy": 1, "seed": 3}

    def test_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "budgeter", "version": 1}))
        with pytest.raises(ValueError, match="not an engine run checkpoint"):
            Engine.load_checkpoint(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "vnext.json"
        path.write_text(
            json.dumps({"kind": "engine-run", "version": CHECKPOINT_VERSION + 1})
        )
        with pytest.raises(ValueError, match="unsupported engine checkpoint"):
            Engine.load_checkpoint(path)

    def test_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(
            json.dumps({"kind": "engine-run", "version": CHECKPOINT_VERSION})
        )
        with pytest.raises(ValueError, match="missing 'strategy'"):
            Engine.load_checkpoint(path)

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json {")
        with pytest.raises(ValueError, match="not a JSON checkpoint"):
            Engine.load_checkpoint(path)

    def test_resume_with_nothing_left_rejected(self, engine, tmp_path):
        path = tmp_path / "done.json"
        engine.run("capping", hours=4, checkpoint_path=path)
        with pytest.raises(ValueError, match="nothing left to run"):
            engine.resume(path, hours=2)

    def test_resume_with_corrupt_records_rejected(self, engine, tmp_path):
        path = tmp_path / "run.json"
        engine.run("capping", hours=3, checkpoint_path=path)
        payload = json.loads(path.read_text())
        payload["records"] = payload["records"][:-1]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="corrupt checkpoint"):
            engine.resume(path, hours=6)
