"""Tests for heterogeneous data centers (Section IX extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import (
    CapacityError,
    CoolingModel,
    HeterogeneousDataCenter,
    LocalOptimizer,
    ServerPool,
    ServerSpec,
    SwitchPowers,
)


def make_pool(watts=100.0, rate=500.0, count=1000, name="pool"):
    return ServerPool(
        spec=ServerSpec.from_operating_point(name, watts, rate), count=count
    )


def make_hdc(pools=None, **overrides):
    pools = pools or (
        make_pool(100.0, 500.0, 1000, "old"),
        make_pool(50.0, 725.0, 1000, "new"),  # much more efficient
    )
    kwargs = dict(
        name="HDC",
        pools=tuple(pools),
        switch_powers=SwitchPowers(184.0, 184.0, 240.0),
        cooling=CoolingModel(1.94),
        target_response_s=0.5,
    )
    kwargs.update(overrides)
    return HeterogeneousDataCenter(**kwargs)


class TestValidation:
    def test_empty_pools_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousDataCenter(
                name="empty",
                pools=(),
                switch_powers=SwitchPowers(184.0, 184.0, 240.0),
                cooling=CoolingModel(1.94),
                target_response_s=0.5,
            )

    def test_zero_count_pool_rejected(self):
        with pytest.raises(ValueError):
            ServerPool(ServerSpec("s", 10.0, 10.0, 100.0), count=0)

    def test_unattainable_response_rejected(self):
        with pytest.raises(ValueError, match="unattainable"):
            make_hdc(target_response_s=0.001)


class TestGreedySplit:
    def test_efficiency_order(self):
        hdc = make_hdc()
        ordered = hdc.pools_by_efficiency()
        assert ordered[0].spec.name == "new"
        assert ordered[1].spec.name == "old"

    def test_low_load_goes_to_efficient_pool(self):
        hdc = make_hdc()
        split = dict(
            (pool.spec.name, rate) for pool, rate in hdc.split_load(1e5)
        )
        assert split["new"] == pytest.approx(1e5)
        assert split["old"] == 0.0

    def test_spillover(self):
        hdc = make_hdc()
        new_cap = hdc.pools_by_efficiency()[0].capacity_rps(hdc.utilization_cap)
        split = dict(
            (pool.spec.name, rate) for pool, rate in hdc.split_load(new_cap + 1e4)
        )
        assert split["new"] == pytest.approx(new_cap)
        assert split["old"] == pytest.approx(1e4)

    def test_mass_conserved(self):
        hdc = make_hdc()
        lam = 6e5
        assert sum(r for _, r in hdc.split_load(lam)) == pytest.approx(lam)

    def test_capacity_error(self):
        hdc = make_hdc()
        with pytest.raises(CapacityError):
            hdc.split_load(1e9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_hdc().split_load(-1.0)


class TestPower:
    def test_zero_load(self):
        p = make_hdc().provision(0.0)
        assert p.total_power_w == 0.0

    def test_greedy_cheaper_than_single_old_pool(self):
        # Same total capacity, but the heterogeneous site can put the
        # load on its efficient half.
        hdc = make_hdc()
        old_only = make_hdc(pools=(make_pool(100.0, 500.0, 2000, "old"),))
        lam = 2e5
        assert hdc.power_w(lam) < old_only.power_w(lam)

    def test_power_monotone(self):
        hdc = make_hdc()
        lams = np.linspace(1e4, 8e5, 12)
        powers = [hdc.power_w(l) for l in lams]
        assert powers == sorted(powers)

    def test_components_consistent(self):
        p = make_hdc().provision(3e5)
        assert p.total_power_w == pytest.approx(
            p.server_power_w + p.network_power_w + p.cooling_power_w
        )
        assert p.n_servers > 0

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=7e5))
    def test_secant_affine_upper_bounds_exact(self, lam):
        # The affine decision model must never underestimate (convexity
        # of the greedy curve). Allow pod-granularity fuzz at low load.
        hdc = make_hdc()
        exact = hdc.power_mw(lam)
        modeled = hdc.affine_power().power_mw(lam)
        assert modeled >= exact * 0.95 - 0.02

    def test_piecewise_power_structure(self):
        hdc = make_hdc()
        segments = hdc.piecewise_power()
        assert len(segments) == 2
        caps = [c for c, _ in segments]
        slopes = [s for _, s in segments]
        assert caps == sorted(caps)
        assert slopes == sorted(slopes)  # efficiency order: slopes rise


class TestIntegration:
    def test_local_optimizer_compatible(self):
        hdc = make_hdc(power_cap_mw=0.15)
        opt = LocalOptimizer(hdc)
        d = opt.decide(9e5)
        assert d.power_mw <= 0.15 + 1e-6
        assert d.served_rps > 0

    def test_site_and_cost_min_compatible(self):
        from repro.core import CostMinimizer, Site

        pol_cls = __import__(
            "repro.powermarket", fromlist=["SteppedPricingPolicy"]
        ).SteppedPricingPolicy
        policy = pol_cls("H", (0.5, 1.0), (10.0, 20.0, 40.0))
        site = Site(make_hdc(), policy, np.full(24, 0.2))
        d = CostMinimizer().solve([site.hour(0)], 4e5)
        assert d.predicted_cost > 0

    def test_simulator_accepts_heterogeneous_sites(self):
        from repro.core import Site
        from repro.powermarket import SteppedPricingPolicy
        from repro.sim import Simulator
        from repro.workload import CustomerMix, Trace

        policy = SteppedPricingPolicy("H", (0.5, 1.0), (10.0, 20.0, 40.0))
        site = Site(make_hdc(), policy, np.full(24, 0.2))
        wl = Trace(np.full(24, 3e5))
        sim = Simulator([site], wl, CustomerMix())
        res = sim.run_capping(hours=6)
        assert res.total_cost > 0
        assert res.premium_throughput_fraction == pytest.approx(1.0)
