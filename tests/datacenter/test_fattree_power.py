"""Tests for fat-tree topology, networking power, and cooling models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import (
    CoolingModel,
    FatTree,
    NetworkPowerModel,
    PAPER_COOLING_EFFICIENCIES,
    SwitchPowers,
    fat_tree_for_servers,
    paper_switch_powers,
)


class TestFatTree:
    def test_k4_canonical_counts(self):
        ft = FatTree(4)
        assert ft.max_servers == 16
        assert ft.n_pods == 4
        assert ft.n_core == 4
        assert ft.servers_per_edge_switch == 2
        total = ft.total_switches()
        assert (total.edge, total.aggregation, total.core) == (8, 8, 4)
        assert total.total == 20

    def test_odd_or_small_k_rejected(self):
        with pytest.raises(ValueError):
            FatTree(3)
        with pytest.raises(ValueError):
            FatTree(0)

    def test_active_switches_zero(self):
        assert FatTree(4).active_switches(0).total == 0

    def test_active_switches_one_server(self):
        c = FatTree(4).active_switches(1)
        assert c.edge == 1
        assert c.aggregation == 2  # the pod's agg layer powers on
        assert c.core >= 1

    def test_active_switches_full(self):
        ft = FatTree(4)
        c = ft.active_switches(ft.max_servers)
        assert c == ft.total_switches()

    def test_capacity_enforced(self):
        with pytest.raises(ValueError, match="capacity"):
            FatTree(4).active_switches(17)
        with pytest.raises(ValueError):
            FatTree(4).active_switches(-1)

    def test_paper_scale_k108(self):
        ft = fat_tree_for_servers(300_000)
        assert ft.k == 108
        assert ft.max_servers == 314_928

    def test_fat_tree_for_servers_minimal(self):
        assert fat_tree_for_servers(16).k == 4
        assert fat_tree_for_servers(17).k == 6
        with pytest.raises(ValueError):
            fat_tree_for_servers(0)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=1000))
    def test_active_counts_monotone_and_bounded(self, half_k, n):
        ft = FatTree(2 * half_k)
        n = min(n, ft.max_servers)
        c_n = ft.active_switches(n)
        c_tot = ft.total_switches()
        assert c_n.edge <= c_tot.edge
        assert c_n.aggregation <= c_tot.aggregation
        assert c_n.core <= c_tot.core
        if n < ft.max_servers:
            c_next = ft.active_switches(n + 1)
            assert c_next.total >= c_n.total

    def test_switches_per_server_matches_full_tree_average(self):
        ft = FatTree(8)
        edge, agg, core = ft.switches_per_server()
        total = ft.total_switches()
        assert edge * ft.max_servers == pytest.approx(total.edge)
        assert agg * ft.max_servers == pytest.approx(total.aggregation)
        assert core * ft.max_servers == pytest.approx(total.core)


class TestNetworkPower:
    def test_stepped_power(self):
        model = NetworkPowerModel(FatTree(4), SwitchPowers(100.0, 200.0, 300.0))
        # 1 server: 1 edge + 2 agg + 1 core = 100 + 400 + 300.
        assert model.power_w(1) == pytest.approx(800.0)
        assert model.power_w(0) == 0.0

    def test_full_power(self):
        model = NetworkPowerModel(FatTree(4), SwitchPowers(100.0, 200.0, 300.0))
        assert model.full_power_w() == pytest.approx(8 * 100 + 8 * 200 + 4 * 300)

    def test_watts_per_server_amortizes_full_tree(self):
        model = NetworkPowerModel(FatTree(8), SwitchPowers(184.0, 184.0, 240.0))
        assert model.watts_per_server() * model.topology.max_servers == pytest.approx(
            model.full_power_w()
        )

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            SwitchPowers(-1.0, 0.0, 0.0)

    def test_paper_switch_powers(self):
        sw = paper_switch_powers()
        assert len(sw) == 3
        assert sw[0].edge_w == pytest.approx(184.0)
        assert sw[1].core_w == pytest.approx(260.0)


class TestCooling:
    def test_power_quotient_form(self):
        cm = CoolingModel(coe=2.0)
        assert cm.power_w(1000.0) == pytest.approx(500.0)

    def test_higher_coe_means_less_cooling_power(self):
        assert CoolingModel(1.94).power_w(1000.0) < CoolingModel(1.39).power_w(1000.0)

    def test_overhead_factor_and_pue(self):
        cm = CoolingModel(coe=2.0)
        assert cm.overhead_factor == pytest.approx(1.5)
        assert cm.pue == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoolingModel(0.0)
        with pytest.raises(ValueError):
            CoolingModel(2.0).power_w(-1.0)

    def test_paper_efficiencies(self):
        assert PAPER_COOLING_EFFICIENCIES == (1.94, 1.39, 1.74)
        # PUE range sanity: 1.5 - 1.8.
        for coe in PAPER_COOLING_EFFICIENCIES:
            assert 1.4 < CoolingModel(coe).pue < 1.8
