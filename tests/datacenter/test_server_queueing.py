"""Tests for server power and G/G/m queueing models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import (
    QueueParams,
    ServerSpec,
    max_arrival_rate,
    paper_server_specs,
    required_servers,
    response_time,
)


class TestServerSpec:
    def test_linear_power(self):
        s = ServerSpec("s", idle_w=60.0, dynamic_w=40.0, service_rate=500.0)
        assert s.power_w(0.0) == pytest.approx(60.0)
        assert s.power_w(1.0) == pytest.approx(100.0)
        assert s.power_w(0.5) == pytest.approx(80.0)
        assert s.peak_w == pytest.approx(100.0)

    def test_power_array(self):
        s = ServerSpec("s", 60.0, 40.0, 500.0)
        out = s.power_w(np.array([0.0, 0.5, 1.0]))
        assert out == pytest.approx([60.0, 80.0, 100.0])

    def test_utilization_range_enforced(self):
        s = ServerSpec("s", 60.0, 40.0, 500.0)
        with pytest.raises(ValueError):
            s.power_w(-0.1)
        with pytest.raises(ValueError):
            s.power_w(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerSpec("s", -1.0, 40.0, 500.0)
        with pytest.raises(ValueError):
            ServerSpec("s", 1.0, 40.0, 0.0)

    def test_from_operating_point_recovers_quoted_power(self):
        s = ServerSpec.from_operating_point("s", 88.88, 500.0)
        assert s.power_w(0.80) == pytest.approx(88.88)
        assert s.idle_w < s.peak_w

    def test_paper_specs(self):
        specs = paper_server_specs()
        assert len(specs) == 3
        assert [round(s.power_w(0.8), 2) for s in specs] == [88.88, 34.00, 49.90]
        assert [s.service_rate for s in specs] == [500.0, 300.0, 725.0]


class TestResponseTime:
    def test_zero_load_is_service_time(self):
        assert response_time(0.0, 10, 100.0) == pytest.approx(0.01)

    def test_unstable_queue_is_infinite(self):
        assert response_time(1000.0, 10, 100.0) == float("inf")
        assert response_time(999.9999, 10, 100.0) < float("inf")

    def test_monotone_in_load(self):
        r = [response_time(lam, 10, 100.0) for lam in (100, 500, 900, 990)]
        assert r == sorted(r)

    def test_more_servers_reduce_response(self):
        r5 = response_time(400.0, 5, 100.0)
        r10 = response_time(400.0, 10, 100.0)
        assert r10 < r5

    def test_variability_increases_waiting(self):
        calm = response_time(900.0, 10, 100.0, QueueParams(ca2=0.5, cb2=0.5))
        bursty = response_time(900.0, 10, 100.0, QueueParams(ca2=4.0, cb2=4.0))
        assert bursty > calm

    def test_full_allen_cunneen_below_simplified(self):
        # rho < 1 means rho^e < 1: the full form predicts less waiting.
        full = response_time(500.0, 10, 100.0, simplified=False)
        simple = response_time(500.0, 10, 100.0, simplified=True)
        assert full <= simple
        # They converge (relatively) as rho -> 1.
        full_hi = response_time(995.0, 10, 100.0, simplified=False)
        simple_hi = response_time(995.0, 10, 100.0, simplified=True)
        assert (simple_hi - full_hi) / simple_hi < (simple - full) / simple

    def test_validation(self):
        with pytest.raises(ValueError):
            response_time(-1.0, 10, 100.0)
        with pytest.raises(ValueError):
            response_time(1.0, 0, 100.0)
        with pytest.raises(ValueError):
            QueueParams(ca2=-1.0)


class TestRequiredServers:
    def test_meets_target_exactly(self):
        lam, mu, rs = 5000.0, 100.0, 0.05
        n = required_servers(lam, mu, rs)
        assert response_time(lam, n, mu) <= rs + 1e-12
        assert response_time(lam, n - 1, mu) > rs

    def test_zero_load_needs_no_servers(self):
        assert required_servers(0.0, 100.0, 0.05) == 0.0

    def test_continuous_value_below_integral(self):
        lam, mu, rs = 5000.0, 100.0, 0.05
        cont = required_servers(lam, mu, rs, integral=False)
        integ = required_servers(lam, mu, rs, integral=True)
        assert cont <= integ < cont + 1

    def test_unattainable_target_rejected(self):
        with pytest.raises(ValueError, match="service time"):
            required_servers(100.0, 100.0, 0.01)  # Rs == 1/mu

    def test_round_trip_with_max_arrival_rate(self):
        mu, rs = 100.0, 0.05
        n = 25
        lam = max_arrival_rate(n, mu, rs)
        assert response_time(lam, n, mu) == pytest.approx(rs)
        assert required_servers(lam, mu, rs, integral=False) == pytest.approx(n)

    def test_max_arrival_rate_clamped_at_zero(self):
        assert max_arrival_rate(0, 100.0, 0.0101) == 0.0


class TestQueueingProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        lam=st.floats(min_value=1.0, max_value=1e6),
        mu=st.floats(min_value=10.0, max_value=1000.0),
        slack=st.floats(min_value=0.001, max_value=1.0),
        k=st.floats(min_value=0.1, max_value=5.0),
    )
    def test_required_servers_always_sufficient(self, lam, mu, slack, k):
        rs = 1.0 / mu + slack
        params = QueueParams(ca2=k, cb2=k)
        n = required_servers(lam, mu, rs, params)
        assert response_time(lam, n, mu, params) <= rs * (1 + 1e-9)

    @settings(max_examples=60, deadline=None)
    @given(
        mu=st.floats(min_value=10.0, max_value=1000.0),
        slack=st.floats(min_value=0.001, max_value=1.0),
        lam1=st.floats(min_value=1.0, max_value=1e5),
        lam2=st.floats(min_value=1.0, max_value=1e5),
    )
    def test_required_servers_monotone_in_load(self, mu, slack, lam1, lam2):
        rs = 1.0 / mu + slack
        lo, hi = sorted((lam1, lam2))
        assert required_servers(lo, mu, rs) <= required_servers(hi, mu, rs)

    @settings(max_examples=60, deadline=None)
    @given(
        lam=st.floats(min_value=1.0, max_value=1e5),
        mu=st.floats(min_value=10.0, max_value=1000.0),
        slack=st.floats(min_value=0.001, max_value=1.0),
    )
    def test_subadditive_split(self, lam, mu, slack):
        # Splitting a stream across two sites can never need fewer total
        # servers than pooling (the intercept term is paid twice).
        rs = 1.0 / mu + slack
        pooled = required_servers(lam, mu, rs, integral=False)
        split = 2 * required_servers(lam / 2, mu, rs, integral=False)
        assert split >= pooled - 1e-9
