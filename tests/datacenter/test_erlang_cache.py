"""The Erlang-B recurrence cache must be invisible except in speed.

``erlang_b`` memoizes recurrence prefixes per offered load; the
contract is exact equality with the retained plain scan
(:func:`_erlang_b_uncached`) — the recurrence extends term by term, so
a cached continuation computes literally the same float sequence.
Also pins the LRU bound and the telemetry hit/miss counters.
"""

import numpy as np
import pytest

from repro.datacenter import ErlangCache, erlang_b, mmm_required_servers
from repro.datacenter.erlang import _erlang_b_uncached
from repro.telemetry import Telemetry, use_telemetry


class TestEquivalence:
    def test_matches_uncached_scan_exactly(self):
        cache = ErlangCache()
        rng = np.random.default_rng(11)
        for _ in range(200):
            a = float(rng.uniform(0.0, 500.0))
            m = int(rng.integers(0, 400))
            assert cache.erlang_b(m, a) == _erlang_b_uncached(m, a)

    def test_interleaved_loads_do_not_cross_talk(self):
        cache = ErlangCache()
        # Ascending then descending m at two alternating loads: every
        # answer must still equal the scan.
        for m in list(range(0, 50, 7)) + list(range(49, 0, -11)):
            for a in (3.5, 80.0):
                assert cache.erlang_b(m, a) == _erlang_b_uncached(m, a)

    def test_module_function_uses_default_cache(self):
        assert erlang_b(100, 75.0) == _erlang_b_uncached(100, 75.0)

    def test_required_servers_unchanged(self):
        # The upward fleet search is the cache's main customer.
        assert mmm_required_servers(1000.0, 10.0, 0.25) == \
            mmm_required_servers(1000.0, 10.0, 0.25)

    def test_input_validation(self):
        cache = ErlangCache()
        with pytest.raises(ValueError):
            cache.erlang_b(-1, 10.0)
        with pytest.raises(ValueError):
            cache.erlang_b(10, -1.0)
        with pytest.raises(ValueError):
            ErlangCache(maxsize=0)


class TestBookkeeping:
    def test_lru_bound_holds(self):
        cache = ErlangCache(maxsize=4)
        for a in range(10):
            cache.erlang_b(50, float(a))
        assert len(cache._terms) == 4
        # The most recent loads survived.
        assert set(cache._terms) == {6.0, 7.0, 8.0, 9.0}

    def test_clear_empties_the_memo(self):
        cache = ErlangCache()
        cache.erlang_b(10, 5.0)
        cache.clear()
        assert not cache._terms

    def test_hit_and_miss_counters(self):
        cache = ErlangCache()
        tel = Telemetry()
        with use_telemetry(tel):
            cache.erlang_b(10, 5.0)    # miss
            cache.erlang_b(20, 5.0)    # hit: extends the same prefix
            cache.erlang_b(15, 5.0)    # hit: fully covered
            cache.erlang_b(10, 6.0)    # miss: new load
        hits = tel.registry.counter("datacenter.erlang_cache.hit").value
        misses = tel.registry.counter("datacenter.erlang_cache.miss").value
        assert hits == 2
        assert misses == 2

    def test_fleet_search_mostly_hits(self):
        cache = ErlangCache()
        tel = Telemetry()
        with use_telemetry(tel):
            # Probe m, m+1, ... at one fixed load, like the fleet search.
            for m in range(100, 140):
                cache.erlang_b(m, 95.0)
        hits = tel.registry.counter("datacenter.erlang_cache.hit").value
        misses = tel.registry.counter("datacenter.erlang_cache.miss").value
        assert misses == 1
        assert hits == 39
