"""Tolerance-based bisection in the local optimizer: same answer, fewer probes.

``LocalOptimizer.max_rate_within_cap`` used to bisect a fixed 60
iterations; it now stops when the bracket is ``BISECTION_REL_TOL``
relative to the initial upper bound. The regression contract: the
returned rate is unchanged to 1e-6 relative versus the fixed-60
reference, while spending measurably fewer exact-model probes (reported
on ``datacenter.local_optimizer.bisection_iters``).
"""

import dataclasses

import pytest

from repro.datacenter import CapacityError, LocalOptimizer
from repro.experiments.paper_setup import paper_world
from repro.telemetry import Telemetry, use_telemetry


def capped_dc(fraction=0.55):
    """A paper site whose power cap binds well below fleet capacity."""
    dc = paper_world().sites[0].datacenter
    peak = dc.peak_power_mw()
    return dataclasses.replace(dc, power_cap_mw=fraction * peak)


def fixed_iteration_reference(dc, iterations=60):
    """The pre-tolerance bisection, reproduced verbatim."""
    hi = dc.max_throughput_rps()
    if dc.power_cap_mw < float("inf"):
        hi = min(hi * 1.25 + 1.0, hi + 1e6)
    if dc.power_mw(hi) <= dc.power_cap_mw:
        return hi
    lo = 0.0
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        try:
            ok = dc.power_mw(mid) <= dc.power_cap_mw
        except CapacityError:
            ok = False
        if ok:
            lo = mid
        else:
            hi = mid
    return lo


class TestToleranceRegression:
    @pytest.mark.parametrize("fraction", [0.3, 0.55, 0.8])
    def test_rate_unchanged_to_1e6_relative(self, fraction):
        dc = capped_dc(fraction)
        got = LocalOptimizer(dc).max_rate_within_cap()
        ref = fixed_iteration_reference(dc)
        assert got == pytest.approx(ref, rel=1e-6)
        # Both answers actually respect the cap.
        assert dc.power_mw(got) <= dc.power_cap_mw + 1e-9

    def test_uncapped_site_early_returns(self):
        dc = paper_world().sites[0].datacenter
        opt = LocalOptimizer(dc)
        tel = Telemetry()
        with use_telemetry(tel):
            rate = opt.max_rate_within_cap()
        assert rate == dc.max_throughput_rps()
        # No bisection happened, so no iterations were recorded.
        assert tel.registry.get(
            "datacenter.local_optimizer.bisection_iters"
        ) is None


class TestIterationTelemetry:
    def test_iterations_counted_and_below_fixed_budget(self):
        opt = LocalOptimizer(capped_dc())
        tel = Telemetry()
        with use_telemetry(tel):
            opt.max_rate_within_cap()
        iters = tel.registry.counter(
            "datacenter.local_optimizer.bisection_iters"
        ).value
        # The tolerance stop saves probes vs the historical fixed 60
        # while still doing real work.
        assert 10 <= iters < 60

    def test_decide_sheds_through_tolerant_bisection(self):
        dc = capped_dc(0.4)
        opt = LocalOptimizer(dc)
        decision = opt.decide(dc.fleet_throughput_rps())
        assert decision.capped
        assert decision.power_mw <= dc.power_cap_mw + 1e-9
        assert decision.served_rps == pytest.approx(
            fixed_iteration_reference(dc), rel=1e-6
        )
