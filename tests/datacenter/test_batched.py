"""Batched site physics must be bit-identical to the scalar classes.

:class:`SiteBank` re-states :meth:`DataCenter.provision` (integral
servers, stepped fat-tree, cooling overhead) as array arithmetic; the
contract is *bit-for-bit* equality with the scalar reference on the
paper's site fleet — the simulator switches between the two paths, so
even one ULP of drift would make ``batched=True`` observable in the
bills. The fleet here is the paper's 13-site large-system case: the
three Section VI data centers replicated with drifting cooling
efficiencies.
"""

import dataclasses

import numpy as np
import pytest

from repro.datacenter import (
    CapacityError,
    CoolingModel,
    SiteBank,
    supports_batching,
)
from repro.experiments.paper_setup import paper_world


def thirteen_sites():
    """The paper's 3 data centers replicated to 13, mildly perturbed."""
    base = [s.datacenter for s in paper_world().sites]
    out = []
    for i in range(13):
        dc = base[i % 3]
        out.append(
            dataclasses.replace(
                dc,
                name=f"{dc.name}-{i}",
                cooling=CoolingModel(dc.cooling.coe * (0.9 + 0.02 * i)),
            )
        )
    return out


@pytest.fixture(scope="module")
def dcs():
    return thirteen_sites()


@pytest.fixture(scope="module")
def bank(dcs):
    return SiteBank(dcs)


def rate_grid(dcs, n_points=7):
    """(site, candidate) grid spanning idle to near fleet capacity."""
    fracs = np.array([0.0, 1e-6, 0.1, 0.35, 0.5, 0.8, 0.999])[:n_points]
    tops = np.array([dc.fleet_throughput_rps() for dc in dcs])
    return tops[:, None] * fracs[None, :]


class TestBitIdentity:
    def test_provision_matches_scalar_13_sites(self, dcs, bank):
        rates = rate_grid(dcs)
        n, util, server_w, network_w, cooling_w = bank.provision_arrays(rates)
        for i, dc in enumerate(dcs):
            for j in range(rates.shape[1]):
                prov = dc.provision(rates[i, j])
                assert n[i, j] == prov.n_servers
                assert util[i, j] == prov.utilization
                assert server_w[i, j] == prov.server_power_w
                assert network_w[i, j] == prov.network_power_w
                assert cooling_w[i, j] == prov.cooling_power_w

    def test_power_mw_matches_scalar(self, dcs, bank):
        rates = rate_grid(dcs)
        power = bank.power_mw(rates)
        for i, dc in enumerate(dcs):
            for j in range(rates.shape[1]):
                assert power[i, j] == dc.power_mw(rates[i, j])

    def test_coe_override_matches_weather_world(self, dcs, bank):
        # A weather hour replaces each site's cooling efficiency; the
        # override array must reproduce scalar sites rebuilt with the
        # same CoolingModel.
        coe = np.array([dc.cooling.coe * 0.8 for dc in dcs])
        rates = rate_grid(dcs)[:, 3]
        power = bank.power_mw(rates, coe=coe)
        for i, dc in enumerate(dcs):
            hot = dataclasses.replace(dc, cooling=CoolingModel(coe[i]))
            assert power[i] == hot.power_mw(rates[i])

    def test_affine_matches_scalar(self, dcs, bank):
        slope, intercept = bank.affine()
        for i, dc in enumerate(dcs):
            aff = dc.affine_power()
            assert slope[i] == aff.slope_mw_per_rps
            assert intercept[i] == aff.intercept_mw

    def test_max_throughput_matches_scalar(self, dcs, bank):
        got = bank.max_throughput_rps()
        for i, dc in enumerate(dcs):
            assert got[i] == dc.max_throughput_rps()

    def test_response_time_matches_queueing_model(self, dcs, bank):
        from repro.datacenter import response_time

        rates = rate_grid(dcs)
        n = bank.required_servers(rates)
        rts = bank.response_time(rates, n)
        for i, dc in enumerate(dcs):
            mu = dc.servers.service_rate
            for j in range(rates.shape[1]):
                if n[i, j] == 0:
                    assert rts[i, j] == 0.0
                else:
                    assert rts[i, j] == response_time(
                        rates[i, j], int(n[i, j]), mu, dc.queue
                    )


class TestEdges:
    def test_zero_rate_is_fully_idle(self, bank):
        n, util, server_w, network_w, cooling_w = bank.provision_arrays(
            np.zeros(bank.n_sites)
        )
        assert not n.any() and not server_w.any()
        assert not network_w.any() and not cooling_w.any()

    def test_over_fleet_raises_capacity_error(self, dcs, bank):
        rates = np.array([dc.fleet_throughput_rps() for dc in dcs])
        rates[4] *= 1.5
        with pytest.raises(CapacityError, match=dcs[4].name):
            bank.required_servers(rates)

    def test_validate_false_reports_oversubscription(self, dcs, bank):
        rates = np.array([dc.fleet_throughput_rps() for dc in dcs]) * 1.5
        n = bank.required_servers(rates, validate=False)
        assert np.all(n > bank.max_servers)

    def test_negative_rate_rejected(self, bank):
        with pytest.raises(ValueError):
            bank.required_servers(np.full(bank.n_sites, -1.0))

    def test_unstable_response_time_is_inf(self, bank):
        rates = np.full(bank.n_sites, 1000.0)
        n = np.ones(bank.n_sites)
        assert np.all(np.isinf(bank.response_time(rates, n)))

    def test_heterogeneous_site_rejected(self):
        class NotBatchable:
            name = "hetero"
            servers = None

        assert not supports_batching(NotBatchable())
        with pytest.raises(ValueError, match="hetero"):
            SiteBank([NotBatchable()])

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            SiteBank([])
