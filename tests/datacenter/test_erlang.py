"""Tests for exact M/M/m (Erlang) results and Allen-Cunneen validation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import (
    QueueParams,
    erlang_b,
    erlang_c,
    mmm_required_servers,
    mmm_response_time,
    required_servers,
    response_time,
)


class TestErlangB:
    def test_known_values(self):
        # Classic table entries: B(1, 1) = 0.5; B(2, 1) = 0.2.
        assert erlang_b(1, 1.0) == pytest.approx(0.5)
        assert erlang_b(2, 1.0) == pytest.approx(0.2)
        assert erlang_b(0, 5.0) == pytest.approx(1.0)

    def test_monotone_in_servers(self):
        vals = [erlang_b(m, 10.0) for m in range(1, 30)]
        assert vals == sorted(vals, reverse=True)

    def test_stable_at_scale(self):
        # No overflow even for hundreds of thousands of servers.
        b = erlang_b(300_000, 250_000.0)
        assert 0.0 <= b < 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_b(-1, 1.0)
        with pytest.raises(ValueError):
            erlang_b(1, -1.0)


class TestErlangC:
    def test_single_server_is_rho(self):
        # M/M/1: waiting probability equals the utilization.
        assert erlang_c(1, 0.7) == pytest.approx(0.7)

    def test_bounds(self):
        assert 0.0 <= erlang_c(10, 5.0) <= 1.0
        assert erlang_c(10, 10.0) == 1.0  # boundary
        assert erlang_c(10, 15.0) == 1.0  # overload

    def test_more_servers_less_waiting(self):
        vals = [erlang_c(m, 8.0) for m in range(9, 30)]
        assert vals == sorted(vals, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)


class TestMmmResponseTime:
    def test_mm1_closed_form(self):
        # M/M/1: R = 1 / (mu - lambda).
        lam, mu = 7.0, 10.0
        assert mmm_response_time(lam, 1, mu) == pytest.approx(1.0 / (mu - lam))

    def test_zero_load(self):
        assert mmm_response_time(0.0, 5, 10.0) == pytest.approx(0.1)

    def test_unstable(self):
        assert mmm_response_time(100.0, 5, 10.0) == math.inf

    def test_required_servers_exact(self):
        lam, mu, rs = 500.0, 10.0, 0.15
        m = mmm_required_servers(lam, mu, rs)
        assert mmm_response_time(lam, m, mu) <= rs
        assert mmm_response_time(lam, m - 1, mu) > rs

    def test_required_servers_zero_load(self):
        assert mmm_required_servers(0.0, 10.0, 1.0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            mmm_required_servers(1.0, 10.0, 0.1)  # == 1/mu


class TestAllenCunneenAgainstErlang:
    """The paper's approximation vs the exact M/M/m ground truth."""

    @settings(max_examples=60, deadline=None)
    @given(
        m=st.integers(min_value=2, max_value=200),
        rho=st.floats(min_value=0.5, max_value=0.98),
        mu=st.floats(min_value=1.0, max_value=500.0),
    )
    def test_simplified_form_upper_bounds_exact(self, m, rho, mu):
        # The paper's rho~=1 simplification drops the rho^e < 1 factor,
        # so it always over-estimates waiting: provisioning with it is
        # conservative (never violates the QoS target).
        lam = rho * m * mu
        exact = mmm_response_time(lam, m, mu)
        approx = response_time(lam, m, mu, QueueParams(1.0, 1.0), simplified=True)
        assert approx >= exact - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(
        m=st.integers(min_value=2, max_value=200),
        rho=st.floats(min_value=0.3, max_value=0.99),
        mu=st.floats(min_value=10.0, max_value=500.0),
    )
    def test_exact_identity_with_erlang_c(self, m, rho, mu):
        # Algebraically, the paper's simplified wait 1/(m mu - lam) is
        # the exact M/M/m wait divided by the Erlang-C probability:
        # exact = C(m, a) / (m mu - lam). Verify the identity.
        lam = rho * m * mu
        exact_wait = mmm_response_time(lam, m, mu) - 1.0 / mu
        approx_wait = (
            response_time(lam, m, mu, QueueParams(1.0, 1.0), simplified=True)
            - 1.0 / mu
        )
        c = erlang_c(m, lam / mu)
        assert approx_wait * c == pytest.approx(exact_wait, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        lam=st.floats(min_value=100.0, max_value=1e5),
        mu=st.floats(min_value=50.0, max_value=1000.0),
        slack=st.floats(min_value=0.005, max_value=0.5),
    )
    def test_paper_fleet_size_never_below_exact(self, lam, mu, slack):
        # Fleets sized with the paper's formula must satisfy the exact
        # M/M/m response-time target too (conservative approximation).
        rs = 1.0 / mu + slack
        n_paper = int(required_servers(lam, mu, rs, QueueParams(1.0, 1.0)))
        assert mmm_response_time(lam, n_paper, mu) <= rs + 1e-12

    def test_fleet_overhead_is_small(self):
        # ... and the conservatism is cheap: within a few servers of the
        # exact minimum at data-center scale.
        lam, mu, rs = 5e5, 500.0, 0.5
        n_paper = int(required_servers(lam, mu, rs))
        n_exact = mmm_required_servers(lam, mu, rs)
        assert n_exact <= n_paper <= n_exact + 3
