"""Tests for the composite DataCenter model and LocalOptimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import (
    CapacityError,
    CoolingModel,
    DataCenter,
    LocalOptimizer,
    ServerSpec,
    SwitchPowers,
)


def make_dc(**overrides) -> DataCenter:
    kwargs = dict(
        name="DC",
        servers=ServerSpec("s", idle_w=60.0, dynamic_w=40.0, service_rate=500.0),
        max_servers=10_000,
        switch_powers=SwitchPowers(184.0, 184.0, 240.0),
        cooling=CoolingModel(1.94),
        target_response_s=0.5,
    )
    kwargs.update(overrides)
    return DataCenter(**kwargs)


class TestValidation:
    def test_bad_fields_rejected(self):
        with pytest.raises(ValueError):
            make_dc(max_servers=0)
        with pytest.raises(ValueError):
            make_dc(utilization_cap=0.0)
        with pytest.raises(ValueError):
            make_dc(utilization_cap=1.5)
        with pytest.raises(ValueError):
            make_dc(power_cap_mw=0.0)
        with pytest.raises(ValueError):
            make_dc(target_response_s=0.001)  # below 1/mu = 2ms


class TestProvisioning:
    def test_zero_load(self):
        p = make_dc().provision(0.0)
        assert p.n_servers == 0
        assert p.total_power_w == 0.0

    def test_utilization_respects_cap(self):
        dc = make_dc(utilization_cap=0.8)
        p = dc.provision(1e6)
        assert p.utilization <= 0.8 + 1e-9

    def test_response_time_met(self):
        from repro.datacenter import response_time

        dc = make_dc()
        for lam in (10.0, 1e4, 1e6):
            p = dc.provision(lam)
            assert (
                response_time(lam, p.n_servers, dc.servers.service_rate, dc.queue)
                <= dc.target_response_s + 1e-12
            )

    def test_power_components_positive(self):
        p = make_dc().provision(5e5)
        assert p.server_power_w > 0
        assert p.network_power_w > 0
        assert p.cooling_power_w > 0
        assert p.total_power_w == pytest.approx(
            p.server_power_w + p.network_power_w + p.cooling_power_w
        )

    def test_cooling_is_it_over_coe(self):
        dc = make_dc(cooling=CoolingModel(2.0))
        p = dc.provision(1e5)
        assert p.cooling_power_w == pytest.approx(
            (p.server_power_w + p.network_power_w) / 2.0
        )

    def test_capacity_error_beyond_fleet(self):
        dc = make_dc(max_servers=10)
        with pytest.raises(CapacityError):
            dc.provision(1e6)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            make_dc().provision(-1.0)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.0, max_value=3e6))
    def test_power_monotone_in_load(self, lam):
        dc = make_dc()
        p1 = dc.power_w(lam)
        p2 = dc.power_w(lam * 1.1 + 1.0)
        assert p2 >= p1 - 1e-9


class TestAffineModel:
    def test_tracks_exact_model_at_scale(self):
        # At meaningful occupancy the smooth model tracks the stepped one;
        # at very low occupancy pod-granularity switch power dominates and
        # the gap is expectedly larger (exercised separately below).
        dc = make_dc()
        affine = dc.affine_power()
        for lam in (1e5, 1e6, 3e6):
            exact = dc.power_mw(lam)
            approx = affine.power_mw(lam)
            assert approx == pytest.approx(exact, rel=0.05)

    def test_underestimates_at_pod_granularity(self):
        dc = make_dc()
        # A handful of servers still powers a whole pod's agg layer: the
        # exact model exceeds the amortized affine one.
        assert dc.power_mw(1e4) > dc.affine_power().power_mw(1e4)

    def test_zero_at_zero(self):
        assert make_dc().affine_power().power_mw(0.0) == 0.0

    def test_max_rate_inversion(self):
        affine = make_dc().affine_power()
        lam = affine.max_rate_for_power(1.0)
        assert affine.power_mw(lam) == pytest.approx(1.0)
        assert affine.max_rate_for_power(0.0) == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            make_dc().affine_power().power_mw(-1.0)


class TestCapacity:
    def test_max_throughput_fleet_limited(self):
        dc = make_dc()  # no power cap
        assert dc.max_throughput_rps() == pytest.approx(
            dc.max_servers * dc.utilization_cap * dc.servers.service_rate
        )

    def test_max_throughput_power_limited(self):
        dc = make_dc(power_cap_mw=0.5)
        lam = dc.max_throughput_rps()
        assert dc.affine_power().power_mw(lam) <= 0.5 + 1e-9
        assert lam < dc.max_servers * dc.utilization_cap * dc.servers.service_rate

    def test_peak_power_scales_with_fleet(self):
        small = make_dc(max_servers=1_000).peak_power_mw()
        large = make_dc(max_servers=10_000).peak_power_mw()
        assert large > small * 5


class TestLocalOptimizer:
    def test_no_shedding_below_cap(self):
        opt = LocalOptimizer(make_dc())
        d = opt.decide(1e5)
        assert d.served_rps == pytest.approx(1e5)
        assert not d.capped
        assert d.shed_rps == 0.0

    def test_sheds_to_power_cap(self):
        dc = make_dc(power_cap_mw=0.3)
        opt = LocalOptimizer(dc)
        d = opt.decide(3e6)
        assert d.capped
        assert d.power_mw <= dc.power_cap_mw + 1e-6
        assert d.served_rps + d.shed_rps == pytest.approx(3e6)

    def test_sheds_to_fleet_capacity(self):
        dc = make_dc(max_servers=100)
        opt = LocalOptimizer(dc)
        d = opt.decide(1e6)
        assert d.capped
        assert d.provisioning.n_servers <= 100

    def test_max_rate_within_cap_is_tight(self):
        dc = make_dc(power_cap_mw=0.3)
        opt = LocalOptimizer(dc)
        lam = opt.max_rate_within_cap()
        assert dc.power_mw(lam) <= 0.3 + 1e-9
        # Tight within 1%.
        assert dc.power_mw(lam * 1.02) > 0.3 or lam == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            LocalOptimizer(make_dc()).decide(-1.0)
