"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_lmp_sweep_defaults(self):
        args = build_parser().parse_args(["lmp-sweep"])
        assert args.max_load == 900.0

    def test_simulate_options(self):
        args = build_parser().parse_args(
            ["simulate", "--strategy", "min-only-low", "--hours", "24", "--policy", "2"]
        )
        assert args.strategy == "min-only-low"
        assert args.hours == 24
        assert args.policy == 2

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "9"])

    def test_trace_flag_on_run_commands(self):
        for command in ("simulate", "compare", "study"):
            args = build_parser().parse_args([command, "--trace", "t.jsonl"])
            assert args.trace == "t.jsonl"

    def test_telemetry_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry"])

    def test_telemetry_summary_args(self):
        args = build_parser().parse_args(["telemetry", "summary", "t.jsonl"])
        assert args.trace_file == "t.jsonl"


class TestCommands:
    def test_lmp_sweep_runs(self, capsys):
        assert main(["lmp-sweep", "--step", "200", "--max-load", "800"]) == 0
        out = capsys.readouterr().out
        assert "LMP B" in out
        assert "10.00" in out

    def test_simulate_min_only_short(self, capsys):
        assert main(["simulate", "--strategy", "min-only-avg", "--hours", "3"]) == 0
        out = capsys.readouterr().out
        assert "total cost" in out
        assert "premium throughput:  100.00%" in out

    def test_simulate_capping_with_budget(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--hours",
                    "3",
                    "--budget-fraction",
                    "0.9",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "monthly budget" in out

    def test_headroom_command(self, capsys):
        assert main(["headroom", "--load", "450"]) == 0
        out = capsys.readouterr().out
        assert "headroom" in out
        assert "10.00" in out  # Brighton-marginal LMP at 450 MW

    def test_headroom_infeasible_load(self, capsys):
        assert main(["headroom", "--load", "99999"]) == 1
        assert "infeasible" in capsys.readouterr().out

    @pytest.mark.slow
    def test_study_command(self, capsys):
        assert main(["study", "--seeds", "1", "--hours", "6"]) == 0
        out = capsys.readouterr().out
        assert "capping-savings" in out
        assert "1/1 seeds" in out


class TestTelemetryCommands:
    def test_trace_sidecar_then_summary_and_export(self, capsys, tmp_path):
        import json

        trace = tmp_path / "run.jsonl"
        assert main([
            "simulate", "--strategy", "min-only-avg", "--hours", "2",
            "--trace", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry trace written" in out
        assert trace.exists()

        assert main(["telemetry", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "== spans ==" in out
        assert "hour" in out and "dispatch" in out

        exported = tmp_path / "agg.json"
        assert main([
            "telemetry", "export", str(trace), "--out", str(exported)
        ]) == 0
        agg = json.loads(exported.read_text())
        assert agg["spans"]["hour"]["count"] == 2
        assert any(k.startswith("solver.") for k in agg["counters"])

    def test_summary_of_empty_trace_fails_cleanly(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["telemetry", "summary", str(empty)]) == 1
        assert "no telemetry" in capsys.readouterr().out
