"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_lmp_sweep_defaults(self):
        args = build_parser().parse_args(["lmp-sweep"])
        assert args.max_load == 900.0

    def test_simulate_options(self):
        args = build_parser().parse_args(
            ["simulate", "--strategy", "min-only-low", "--hours", "24", "--policy", "2"]
        )
        assert args.strategy == "min-only-low"
        assert args.hours == 24
        assert args.policy == 2

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "9"])


class TestCommands:
    def test_lmp_sweep_runs(self, capsys):
        assert main(["lmp-sweep", "--step", "200", "--max-load", "800"]) == 0
        out = capsys.readouterr().out
        assert "LMP B" in out
        assert "10.00" in out

    def test_simulate_min_only_short(self, capsys):
        assert main(["simulate", "--strategy", "min-only-avg", "--hours", "3"]) == 0
        out = capsys.readouterr().out
        assert "total cost" in out
        assert "premium throughput:  100.00%" in out

    def test_simulate_capping_with_budget(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--hours",
                    "3",
                    "--budget-fraction",
                    "0.9",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "monthly budget" in out

    def test_headroom_command(self, capsys):
        assert main(["headroom", "--load", "450"]) == 0
        out = capsys.readouterr().out
        assert "headroom" in out
        assert "10.00" in out  # Brighton-marginal LMP at 450 MW

    def test_headroom_infeasible_load(self, capsys):
        assert main(["headroom", "--load", "99999"]) == 1
        assert "infeasible" in capsys.readouterr().out

    @pytest.mark.slow
    def test_study_command(self, capsys):
        assert main(["study", "--seeds", "1", "--hours", "6"]) == 0
        out = capsys.readouterr().out
        assert "capping-savings" in out
        assert "1/1 seeds" in out
