"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_lmp_sweep_defaults(self):
        args = build_parser().parse_args(["lmp-sweep"])
        assert args.max_load == 900.0

    def test_simulate_options(self):
        args = build_parser().parse_args(
            ["simulate", "--strategy", "min-only-low", "--hours", "24", "--policy", "2"]
        )
        assert args.strategy == "min-only-low"
        assert args.hours == 24
        assert args.policy == 2

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "9"])

    def test_trace_flag_on_run_commands(self):
        for command in ("simulate", "compare", "study"):
            args = build_parser().parse_args([command, "--trace", "t.jsonl"])
            assert args.trace == "t.jsonl"

    def test_endogenous_flags_on_run_and_serve(self):
        for command in ("simulate", "run", "serve"):
            args = build_parser().parse_args(
                [command, "--endogenous-prices", "--grid", "two-zone",
                 "--damping", "0.8"]
            )
            assert args.endogenous_prices is True
            assert args.grid == "two-zone"
            assert args.damping == 0.8
            off = build_parser().parse_args([command])
            assert off.endogenous_prices is False

    def test_telemetry_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry"])

    def test_telemetry_summary_args(self):
        args = build_parser().parse_args(["telemetry", "summary", "t.jsonl"])
        assert args.trace_file == "t.jsonl"


class TestCommands:
    def test_lmp_sweep_runs(self, capsys):
        assert main(["lmp-sweep", "--step", "200", "--max-load", "800"]) == 0
        out = capsys.readouterr().out
        assert "LMP B" in out
        assert "10.00" in out

    def test_simulate_min_only_short(self, capsys):
        assert main(["simulate", "--strategy", "min-only-avg", "--hours", "3"]) == 0
        out = capsys.readouterr().out
        assert "total cost" in out
        assert "premium throughput:  100.00%" in out

    def test_simulate_capping_with_budget(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--hours",
                    "3",
                    "--budget-fraction",
                    "0.9",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "monthly budget" in out

    def test_simulate_endogenous_prices(self, capsys):
        assert main(["simulate", "--hours", "3", "--endogenous-prices"]) == 0
        out = capsys.readouterr().out
        assert "endogenous prices: grid=pjm5bus" in out
        assert "total cost" in out

    def test_simulate_endogenous_unknown_grid(self, capsys):
        with pytest.raises(SystemExit, match="unknown grid"):
            main(["simulate", "--hours", "1", "--endogenous-prices",
                  "--grid", "bogus"])

    def test_headroom_command(self, capsys):
        assert main(["headroom", "--load", "450"]) == 0
        out = capsys.readouterr().out
        assert "headroom" in out
        assert "10.00" in out  # Brighton-marginal LMP at 450 MW

    def test_headroom_infeasible_load(self, capsys):
        assert main(["headroom", "--load", "99999"]) == 1
        assert "infeasible" in capsys.readouterr().out

    @pytest.mark.slow
    def test_study_command(self, capsys):
        assert main(["study", "--seeds", "1", "--hours", "6"]) == 0
        out = capsys.readouterr().out
        assert "capping-savings" in out
        assert "1/1 seeds" in out


class TestTelemetryCommands:
    def test_trace_sidecar_then_summary_and_export(self, capsys, tmp_path):
        import json

        trace = tmp_path / "run.jsonl"
        assert main([
            "simulate", "--strategy", "min-only-avg", "--hours", "2",
            "--trace", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry trace written" in out
        assert trace.exists()

        assert main(["telemetry", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "== spans ==" in out
        assert "hour" in out and "dispatch" in out

        exported = tmp_path / "agg.json"
        assert main([
            "telemetry", "export", str(trace), "--out", str(exported)
        ]) == 0
        agg = json.loads(exported.read_text())
        assert agg["spans"]["hour"]["count"] == 2
        assert any(k.startswith("solver.") for k in agg["counters"])

    def test_summary_of_empty_trace_fails_cleanly(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["telemetry", "summary", str(empty)]) == 1
        assert "no telemetry" in capsys.readouterr().out


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.hours == 24
        assert args.source == "replay"
        assert args.ticks_per_hour == 12
        assert args.strategy == "capping"
        assert args.degradation == "proportional"
        assert args.port == 0

    def test_bursty_source_options(self):
        args = build_parser().parse_args(
            ["serve", "--source", "bursty", "--ca2", "8.0", "--price-jitter", "0.1"]
        )
        assert args.source == "bursty"
        assert args.ca2 == 8.0
        assert args.price_jitter == 0.1

    def test_unknown_degradation_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--degradation", "bogus"])

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["serve", "--resume", "--hours", "1"]) == 2
        assert "--checkpoint" in capsys.readouterr().out

    def test_missing_checkpoint_file_is_clean_error(self, capsys, tmp_path):
        rc = main(
            ["serve", "--resume", "--checkpoint", str(tmp_path / "absent.json")]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().out


class TestServeCommand:
    def test_short_run_writes_decision_log(self, capsys, tmp_path):
        log = tmp_path / "decisions.jsonl"
        rc = main(
            [
                "serve",
                "--hours", "2",
                "--ticks-per-hour", "4",
                "--monthly-budget", "2e6",
                "--no-http",
                "--decision-log", str(log),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "serve" in out
        lines = log.read_text().splitlines()
        assert lines
        import json as _json

        assert all("allocations" in _json.loads(l) for l in lines)

    def test_checkpointed_run_then_resume_completes(self, capsys, tmp_path):
        log = tmp_path / "decisions.jsonl"
        ckpt = tmp_path / "ckpt.json"
        common = [
            "serve",
            "--hours", "2",
            "--ticks-per-hour", "4",
            "--monthly-budget", "2e6",
            "--no-http",
            "--decision-log", str(log),
            "--checkpoint", str(ckpt),
        ]
        assert main(common) == 0
        # The finished run's checkpoint has nothing left to serve.
        rc = main(["serve", "--resume", "--checkpoint", str(ckpt)])
        assert rc == 2
        assert "error:" in capsys.readouterr().out


class TestSolversCommand:
    def test_lists_backends_with_flags(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        assert "decomposition" in out
        assert "revised-simplex" in out
        assert "milp,warm_start,sparse,dispatch" in out
        assert "capabilities" in out

    def test_simulate_rejects_unknown_backend(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER_BACKEND", raising=False)
        assert main(
            ["simulate", "--hours", "2", "--solver-backend", "nope"]
        ) == 2
        assert "unknown solver backend" in capsys.readouterr().out

    def test_simulate_with_decomposition_backend(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER_BACKEND", raising=False)
        assert main(
            ["simulate", "--strategy", "min-only-avg", "--hours", "2",
             "--solver-backend", "decomposition"]
        ) == 0
        assert "total cost" in capsys.readouterr().out
