"""Tests for the canonical paper setup (`repro.experiments`)."""

import numpy as np
import pytest

from repro.experiments import (
    PAPER_BUDGET_LEVELS,
    paper_datacenters,
    paper_pricing,
    paper_world,
)


class TestPaperDatacenters:
    def test_three_sites_with_paper_parameters(self):
        dcs = paper_datacenters()
        assert [dc.name for dc in dcs] == ["DC1", "DC2", "DC3"]
        assert [dc.servers.service_rate for dc in dcs] == [500.0, 300.0, 725.0]
        assert [round(dc.cooling.coe, 2) for dc in dcs] == [1.94, 1.39, 1.74]

    def test_price_maker_scale(self):
        # Sites must reach the 100-237 MW breakpoint ladder.
        for dc in paper_datacenters():
            assert dc.peak_power_mw() > 100.0

    def test_power_cap_passthrough(self):
        dcs = paper_datacenters(power_cap_mw=50.0)
        assert all(dc.power_cap_mw == 50.0 for dc in dcs)


class TestPaperPricing:
    def test_policy0_flat(self):
        assert all(p.is_flat() for p in paper_pricing(0))

    def test_policy1_is_base(self):
        pols = paper_pricing(1)
        assert pols[0].prices == (10.00, 13.90, 15.00, 22.00, 24.00)

    def test_policies_scale_increments(self):
        base = paper_pricing(1)[0]
        for pid, factor in ((2, 2.0), (3, 3.0)):
            scaled = paper_pricing(pid)[0]
            for b, s in zip(base.prices, scaled.prices):
                assert s == pytest.approx(10.0 + factor * (b - 10.0))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            paper_pricing(4)


class TestPaperWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return paper_world(max_servers=500_000)

    def test_structure(self, world):
        assert len(world.sites) == 3
        assert world.hours == 720
        assert world.history.hours == 720
        assert world.mix.premium_fraction == pytest.approx(0.8)

    def test_background_traces_cover_month(self, world):
        for site in world.sites:
            assert site.background_mw.size >= world.hours

    def test_demand_fraction_validated(self):
        with pytest.raises(ValueError):
            paper_world(demand_fraction=0.0)
        with pytest.raises(ValueError):
            paper_world(demand_fraction=1.5)

    def test_peak_demand_within_capacity(self, world):
        capacity = sum(dc.max_throughput_rps() for dc in world.datacenters)
        # Lognormal jitter can push single hours a few percent over the
        # nominal peak, but the trace stays well within total capacity.
        assert world.workload.rates_rps.max() < capacity * 0.75

    def test_budgeter_construction(self, world):
        b = world.budgeter(1_000_000.0)
        assert b.monthly_budget == 1_000_000.0
        assert b.hourly_budget() > 0

    def test_min_only_construction(self, world):
        from repro.core import PriceMode

        disp = world.min_only(PriceMode.LOW)
        assert set(disp.server_slopes) == {"DC1", "DC2", "DC3"}

    def test_budget_levels_ordered(self):
        fracs = list(PAPER_BUDGET_LEVELS.values())
        assert fracs == sorted(fracs)
        assert fracs[0] < 0.75 < fracs[-1]  # spans the premium cost share

    def test_heterogeneous_world(self):
        from repro.core import PriceMode
        from repro.datacenter import HeterogeneousDataCenter
        from repro.sim import Simulator

        w = paper_world(heterogeneous=True, max_servers=400_000)
        assert all(
            isinstance(dc, HeterogeneousDataCenter) for dc in w.datacenters
        )
        assert all(len(dc.pools) == 2 for dc in w.datacenters)
        # The full pipeline works end to end, baselines included.
        sim = Simulator(w.sites, w.workload, w.mix)
        capping = sim.run_capping(hours=4)
        baseline = sim.run_min_only(PriceMode.AVG, hours=4)
        assert capping.total_cost > 0
        assert capping.total_cost <= baseline.total_cost * 1.001

    def test_heterogeneous_legacy_fraction_validated(self):
        from repro.experiments import paper_heterogeneous_datacenters

        with pytest.raises(ValueError):
            paper_heterogeneous_datacenters(legacy_fraction=0.0)

    def test_seed_changes_workload_not_hardware(self):
        w1 = paper_world(seed=1, max_servers=500_000)
        w2 = paper_world(seed=2, max_servers=500_000)
        assert not np.array_equal(w1.workload.rates_rps, w2.workload.rates_rps)
        assert [dc.name for dc in w1.datacenters] == [
            dc.name for dc in w2.datacenters
        ]
