"""Tests for the deterministic fault injector (`repro.resilience.faults`)."""

import pytest

from repro.resilience import FAULT_KINDS, FaultInjector, FaultSpec
from repro.solver import SolverError, SolverLimitError


class TestFaultSpec:
    def test_defaults_inject_nothing(self):
        spec = FaultSpec()
        assert not spec.any_enabled
        inj = FaultInjector(spec)
        assert not any(inj.faults_for(t).any for t in range(100))

    def test_probability_validation(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(price_stale=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(solver_error=-0.1)

    def test_parse_round_trip(self):
        spec = FaultSpec.parse("price_stale=0.1, solver_error=0.05, seed=42")
        assert spec.price_stale == pytest.approx(0.1)
        assert spec.solver_error == pytest.approx(0.05)
        assert spec.seed == 42
        assert spec.sensor_dropout == 0.0

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault channel"):
            FaultSpec.parse("disk_full=0.5")

    def test_parse_rejects_malformed_entries(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultSpec.parse("price_stale")
        with pytest.raises(ValueError, match="bad value"):
            FaultSpec.parse("price_stale=lots")

    def test_parse_empty_spec_is_clean(self):
        assert not FaultSpec.parse("").any_enabled


class TestFaultInjector:
    def test_deterministic_per_hour(self):
        spec = FaultSpec(price_stale=0.5, solver_error=0.3, budget_loss=0.2, seed=7)
        a, b = FaultInjector(spec), FaultInjector(spec)
        for t in range(200):
            assert a.faults_for(t) == b.faults_for(t)

    def test_call_order_independent(self):
        inj = FaultInjector(FaultSpec(price_stale=0.5, seed=1))
        forward = [inj.faults_for(t) for t in range(50)]
        backward = [inj.faults_for(t) for t in reversed(range(50))]
        assert forward == list(reversed(backward))

    def test_seeds_differ(self):
        mk = lambda seed: FaultInjector(
            FaultSpec(price_stale=0.5, solver_error=0.5, seed=seed)
        )
        schedule = lambda inj: [inj.faults_for(t) for t in range(100)]
        assert schedule(mk(1)) != schedule(mk(2))

    def test_certain_faults_fire_every_hour(self):
        inj = FaultInjector(FaultSpec(solver_error=1.0, sensor_dropout=1.0))
        for t in range(20):
            hf = inj.faults_for(t)
            assert hf.solver_error and hf.sensor_dropout
            assert not hf.stale_prices and not hf.budget_loss

    def test_rates_roughly_respected(self):
        inj = FaultInjector(FaultSpec(price_stale=0.3, seed=9))
        counts = inj.schedule_counts(2000)
        assert 0.2 < counts["price_stale"] / 2000 < 0.4
        assert counts["solver_error"] == 0

    def test_negative_hour_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(FaultSpec()).faults_for(-1)

    def test_schedule_counts_covers_all_channels(self):
        counts = FaultInjector(FaultSpec()).schedule_counts(10)
        assert set(counts) == set(FAULT_KINDS)


class TestHourFaults:
    def test_kinds_match_spec_keys(self):
        inj = FaultInjector(
            FaultSpec(price_stale=1.0, solver_timeout=1.0, budget_loss=1.0)
        )
        assert inj.faults_for(0).kinds == (
            "price_stale", "solver_timeout", "budget_loss",
        )

    def test_solver_exception_timeout_wins(self):
        inj = FaultInjector(FaultSpec(solver_error=1.0, solver_timeout=1.0))
        exc = inj.faults_for(0).solver_exception()
        assert isinstance(exc, SolverLimitError)

    def test_solver_exception_error(self):
        inj = FaultInjector(FaultSpec(solver_error=1.0))
        exc = inj.faults_for(0).solver_exception()
        assert isinstance(exc, SolverError)
        assert not isinstance(exc, SolverLimitError)

    def test_no_solver_fault_no_exception(self):
        inj = FaultInjector(FaultSpec(price_stale=1.0))
        assert inj.faults_for(0).solver_exception() is None
