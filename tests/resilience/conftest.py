"""Shared fixtures for resilience tests: hand-tuned site snapshots."""

import pytest

from repro.core import SiteHour
from repro.datacenter import AffinePower
from repro.powermarket import SteppedPricingPolicy


def site_hour(
    name="S",
    slope=0.5e-6,  # MW per rps
    intercept=0.0,
    policy=None,
    background=50.0,
    power_cap=1e4,
    max_rate=2e7,
):
    """A hand-tuned SiteHour with a simple affine power model."""
    policy = policy or SteppedPricingPolicy(
        name, (100.0, 200.0), (10.0, 20.0, 40.0)
    )
    return SiteHour(
        name=name,
        affine=AffinePower(slope, intercept),
        policy=policy,
        background_mw=background,
        power_cap_mw=power_cap,
        max_rate_rps=max_rate,
    )


@pytest.fixture
def three_sites():
    pol = lambda n, p1: SteppedPricingPolicy(n, (100.0, 200.0), (p1, p1 * 2, p1 * 4))
    return [
        site_hour("A", slope=0.5e-6, policy=pol("A", 10.0), background=50.0,
                  max_rate=1e7),
        site_hour("B", slope=0.4e-6, policy=pol("B", 12.0), background=40.0,
                  max_rate=2e7),
        site_hour("C", slope=0.6e-6, policy=pol("C", 8.0), background=30.0,
                  max_rate=1e7),
    ]
