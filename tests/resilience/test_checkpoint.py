"""Budgeter checkpoint/restore round trips (in memory and on disk)."""

import json

import numpy as np
import pytest

from repro.core import Budgeter
from repro.resilience import load_checkpoint, save_checkpoint
from repro.workload import HOURS_PER_WEEK, HourOfWeekPredictor, Trace, wikipedia_like_trace


def _predictor(seed=0):
    return HourOfWeekPredictor(
        wikipedia_like_trace(HOURS_PER_WEEK * 4, 1e6, seed=seed)
    )


def _spend_hours(b, costs):
    for c in costs:
        b.hourly_budget()
        b.record_spend(c)


class TestRoundTrip:
    def test_restored_budgeter_continues_identically(self):
        original = Budgeter(720.0, _predictor(), month_hours=720, start_weekday=2)
        _spend_hours(original, [0.3, 2.0, 0.0, 1.1, 0.7] * 10)
        twin = Budgeter.restore(original.checkpoint())
        assert twin.current_hour == original.current_hour
        assert twin.total_spent == pytest.approx(original.total_spent)
        for _ in range(100):
            assert twin.hourly_budget() == pytest.approx(original.hourly_budget())
            cost = original.hourly_budget() * 0.8
            original.record_spend(cost)
            twin.record_spend(cost)

    def test_restore_preserves_week_reset_alignment(self):
        original = Budgeter(
            1000.0, _predictor(), month_hours=400, start_weekday=3
        )
        _spend_hours(original, [0.0] * 90)  # carryover built up mid-week
        twin = Budgeter.restore(original.checkpoint())
        # 6 hours later the Thursday-started calendar week ends (96 h):
        # both must reset carryover at the same hour.
        budgets_orig, budgets_twin = [], []
        for _ in range(12):
            budgets_orig.append(original.hourly_budget())
            budgets_twin.append(twin.hourly_budget())
            original.record_spend(0.0)
            twin.record_spend(0.0)
        assert budgets_twin == pytest.approx(budgets_orig)

    def test_checkpoint_is_json_serializable(self):
        b = Budgeter(100.0, _predictor(), month_hours=48)
        _spend_hours(b, [1.0, 2.0])
        payload = json.dumps(b.checkpoint())
        twin = Budgeter.restore(json.loads(payload))
        assert twin.hourly_budget() == pytest.approx(b.hourly_budget())

    def test_checkpoint_captures_claw_back_state(self):
        b = Budgeter(100.0, _predictor(), month_hours=48, claw_back_deficit=True)
        b.hourly_budget()
        b.record_spend(50.0)  # deep deficit
        twin = Budgeter.restore(b.checkpoint())
        assert twin.hourly_budget() == pytest.approx(b.hourly_budget())
        assert twin.claw_back_deficit is True


class TestValidation:
    def test_version_mismatch_rejected(self):
        state = Budgeter(10.0, _predictor(), month_hours=24).checkpoint()
        state["version"] = 999
        with pytest.raises(ValueError, match="version"):
            Budgeter.restore(state)

    def test_shape_mismatch_rejected(self):
        state = Budgeter(10.0, _predictor(), month_hours=24).checkpoint()
        state["weights"] = state["weights"][:-1]
        with pytest.raises(ValueError, match="month_hours"):
            Budgeter.restore(state)

    def test_next_hour_out_of_range_rejected(self):
        state = Budgeter(10.0, _predictor(), month_hours=24).checkpoint()
        state["next_hour"] = 25
        with pytest.raises(ValueError, match="next_hour"):
            Budgeter.restore(state)


class TestFiles:
    def test_save_load_round_trip(self, tmp_path):
        b = Budgeter(500.0, _predictor(), month_hours=100)
        _spend_hours(b, [3.0, 1.0, 4.0])
        path = save_checkpoint(b, tmp_path / "budgeter.json")
        twin = load_checkpoint(path)
        assert twin.current_hour == 3
        assert twin.hourly_budget() == pytest.approx(b.hourly_budget())

    def test_save_overwrites_atomically(self, tmp_path):
        b = Budgeter(500.0, _predictor(), month_hours=100)
        path = tmp_path / "ck.json"
        save_checkpoint(b, path)
        b.hourly_budget()
        b.record_spend(2.0)
        save_checkpoint(b, path)
        assert load_checkpoint(path).current_hour == 1
        assert not path.with_suffix(".json.tmp").exists()

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json at all {")
        with pytest.raises(ValueError, match="not a budgeter checkpoint"):
            load_checkpoint(path)
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a budgeter checkpoint"):
            load_checkpoint(path)
