"""Tests for the no-solver degraded dispatch policies."""

import pytest

from repro.core import CappingStep
from repro.resilience import DegradationPolicy, degraded_decision

from .conftest import site_hour


class TestProportional:
    def test_splits_by_capacity(self, three_sites):
        d = degraded_decision(
            DegradationPolicy.PROPORTIONAL, three_sites, 4e6, 4e6, 100.0
        )
        assert d.step is CappingStep.DEGRADED
        rates = {a.site: a.rate_rps for a in d.allocations}
        # Capacities are 1e7/2e7/1e7: site B gets half the load.
        assert rates["B"] == pytest.approx(rates["A"] * 2)
        assert rates["A"] == pytest.approx(rates["C"])
        assert sum(rates.values()) == pytest.approx(8e6)

    def test_serves_everything_when_capacity_allows(self, three_sites):
        d = degraded_decision(
            DegradationPolicy.PROPORTIONAL, three_sites, 3e6, 2e6, 100.0
        )
        assert d.served_premium_rps == pytest.approx(3e6)
        assert d.served_ordinary_rps == pytest.approx(2e6)

    def test_clamps_to_capacity(self, three_sites):
        capacity = sum(sh.max_rate_rps for sh in three_sites)
        d = degraded_decision(
            DegradationPolicy.PROPORTIONAL, three_sites, capacity, capacity, 0.0
        )
        assert d.served_total_rps == pytest.approx(capacity)
        assert d.served_premium_rps == pytest.approx(capacity)
        assert d.served_ordinary_rps == pytest.approx(0.0)
        for a in d.allocations:
            sh = next(s for s in three_sites if s.name == a.site)
            assert a.rate_rps <= sh.max_rate_rps * (1 + 1e-12)

    def test_zero_demand(self, three_sites):
        d = degraded_decision(
            DegradationPolicy.PROPORTIONAL, three_sites, 0.0, 0.0, 10.0
        )
        assert d.served_total_rps == 0.0
        assert d.predicted_cost == 0.0

    def test_predicted_cost_uses_smooth_model(self, three_sites):
        d = degraded_decision(
            DegradationPolicy.PROPORTIONAL, three_sites, 4e6, 4e6, 100.0
        )
        for a in d.allocations:
            sh = next(s for s in three_sites if s.name == a.site)
            assert a.predicted_power_mw == pytest.approx(
                sh.affine.power_mw(a.rate_rps)
            )
            assert a.predicted_cost == pytest.approx(
                a.predicted_price * a.predicted_power_mw
            )

    def test_budget_and_demand_recorded(self, three_sites):
        d = degraded_decision(
            DegradationPolicy.PROPORTIONAL, three_sites, 1e6, 2e6, 42.0
        )
        assert d.budget == 42.0
        assert d.demand_premium_rps == 1e6
        assert d.demand_ordinary_rps == 2e6

    def test_negative_rates_rejected(self, three_sites):
        with pytest.raises(ValueError):
            degraded_decision(
                DegradationPolicy.PROPORTIONAL, three_sites, -1.0, 0.0, 1.0
            )


class TestPremiumShed:
    def test_serves_premium_only(self, three_sites):
        d = degraded_decision(
            DegradationPolicy.PREMIUM_SHED, three_sites, 3e6, 5e6, 100.0
        )
        assert d.served_premium_rps == pytest.approx(3e6)
        assert d.served_ordinary_rps == 0.0
        assert d.demand_ordinary_rps == 5e6
        assert sum(a.rate_rps for a in d.allocations) == pytest.approx(3e6)

    def test_cheaper_than_proportional(self, three_sites):
        full = degraded_decision(
            DegradationPolicy.PROPORTIONAL, three_sites, 3e6, 5e6, 100.0
        )
        shed = degraded_decision(
            DegradationPolicy.PREMIUM_SHED, three_sites, 3e6, 5e6, 100.0
        )
        assert shed.predicted_cost < full.predicted_cost


class TestHoldLast:
    def test_repeats_last_allocation(self, three_sites):
        last = degraded_decision(
            DegradationPolicy.PROPORTIONAL, three_sites, 2e6, 2e6, 100.0
        )
        held = degraded_decision(
            DegradationPolicy.HOLD_LAST, three_sites, 9e6, 9e6, 100.0, last=last
        )
        assert {a.site: a.rate_rps for a in held.allocations} == {
            a.site: a.rate_rps for a in last.allocations
        }

    def test_clamps_to_current_capacity(self, three_sites):
        last = degraded_decision(
            DegradationPolicy.PROPORTIONAL, three_sites, 1e7, 1e7, 100.0
        )
        # Site B's servable rate shrank since the held hour.
        shrunk = [
            site_hour("B", max_rate=1e6) if sh.name == "B" else sh
            for sh in three_sites
        ]
        held = degraded_decision(
            DegradationPolicy.HOLD_LAST, shrunk, 1e7, 1e7, 100.0, last=last
        )
        rates = {a.site: a.rate_rps for a in held.allocations}
        assert rates["B"] == pytest.approx(1e6)

    def test_without_history_falls_back_to_proportional(self, three_sites):
        held = degraded_decision(
            DegradationPolicy.HOLD_LAST, three_sites, 4e6, 4e6, 100.0, last=None
        )
        prop = degraded_decision(
            DegradationPolicy.PROPORTIONAL, three_sites, 4e6, 4e6, 100.0
        )
        assert [a.rate_rps for a in held.allocations] == [
            a.rate_rps for a in prop.allocations
        ]

    def test_sites_missing_from_history_get_zero(self, three_sites):
        last = degraded_decision(
            DegradationPolicy.PROPORTIONAL, three_sites[:2], 2e6, 2e6, 100.0
        )
        held = degraded_decision(
            DegradationPolicy.HOLD_LAST, three_sites, 2e6, 2e6, 100.0, last=last
        )
        assert {a.site: a.rate_rps for a in held.allocations}["C"] == 0.0
