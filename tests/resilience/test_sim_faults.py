"""End-to-end fault-injected simulation on a reduced paper world.

A seeded chaos month must complete with no uncaught exception, every
hour must still carry a dispatch decision, and — just as important —
the fault-free path must stay bit-identical to a plain run.
"""

import numpy as np
import pytest

from repro.experiments import paper_world
from repro.resilience import DegradationPolicy, FaultInjector, FaultSpec
from repro.sim import Simulator
from repro.telemetry import Telemetry, snapshot, summarize, use_telemetry


def _counters(tel):
    return summarize(snapshot(tel))["counters"]

HOURS = 36

CHAOS = FaultSpec(
    price_stale=0.2,
    sensor_dropout=0.15,
    solver_error=0.15,
    solver_timeout=0.1,
    budget_loss=0.1,
    seed=11,
)


@pytest.fixture(scope="module")
def world():
    return paper_world(max_servers=500_000, seed=3)


@pytest.fixture(scope="module")
def sim(world):
    return Simulator(world.sites, world.workload, world.mix)


def _monthly(world, sim):
    anchor = sim.run_capping(hours=HOURS)
    return anchor.total_cost * world.workload.hours / HOURS * 0.85


class TestChaosRun:
    @pytest.fixture(scope="class")
    def chaos(self, world, sim):
        tel = Telemetry()
        budgeter = world.budgeter(_monthly(world, sim))
        with use_telemetry(tel):
            result = sim.run_capping(
                budgeter, hours=HOURS, faults=FaultInjector(CHAOS)
            )
        return result, tel

    def test_every_hour_dispatched(self, chaos):
        result, _ = chaos
        assert len(result.hours) == HOURS
        for h in result.hours:
            assert h.sites  # every hour carries a concrete allocation
            assert h.realized_cost >= 0.0

    def test_solver_faults_become_degraded_hours(self, chaos):
        result, _ = chaos
        expected = sum(
            1
            for t in range(HOURS)
            if FaultInjector(CHAOS).faults_for(t).solver_exception() is not None
        )
        assert expected > 0
        assert result.degraded_hours == expected

    def test_telemetry_counters_recorded(self, chaos):
        result, tel = chaos
        values = _counters(tel)
        assert values["resilience.degraded_hours"] == result.degraded_hours
        assert values["capper.degraded"] == result.degraded_hours
        injected = {
            k: v for k, v in values.items() if k.startswith("resilience.injected.")
        }
        assert injected and all(v > 0 for v in injected.values())
        assert values["resilience.budgeter_restarts"] >= 1

    def test_counters_match_schedule(self, chaos):
        _, tel = chaos
        values = _counters(tel)
        for kind, count in FaultInjector(CHAOS).schedule_counts(HOURS).items():
            assert values.get(f"resilience.injected.{kind}", 0) == count

    def test_seeded_chaos_is_reproducible(self, world, sim, chaos):
        result, _ = chaos
        again = sim.run_capping(
            world.budgeter(_monthly(world, sim)),
            hours=HOURS,
            faults=FaultInjector(CHAOS),
        )
        assert [h.step for h in again.hours] == [h.step for h in result.hours]
        np.testing.assert_allclose(again.hourly_costs, result.hourly_costs)


class TestFaultFreePathUnchanged:
    def test_zero_probability_injector_is_bit_identical(self, world, sim):
        monthly = _monthly(world, sim)
        plain = sim.run_capping(world.budgeter(monthly), hours=HOURS)
        wired = sim.run_capping(
            world.budgeter(monthly),
            hours=HOURS,
            faults=FaultInjector(FaultSpec(seed=99)),
        )
        assert [h.step for h in plain.hours] == [h.step for h in wired.hours]
        assert list(plain.hourly_costs) == list(wired.hourly_costs)
        for a, b in zip(plain.hours, wired.hours):
            assert [(r.site, r.dispatched_rps, r.cost) for r in a.sites] == [
                (r.site, r.dispatched_rps, r.cost) for r in b.sites
            ]
        assert wired.degraded_hours == 0

    def test_faults_none_is_bit_identical(self, sim):
        a = sim.run_capping(hours=12)
        b = sim.run_capping(hours=12, faults=None)
        assert list(a.hourly_costs) == list(b.hourly_costs)


class TestPolicySelection:
    def test_explicit_policy_reaches_capper(self, world, sim):
        budgeter = world.budgeter(_monthly(world, sim))
        result = sim.run_capping(
            budgeter,
            hours=12,
            faults=FaultInjector(FaultSpec(solver_error=1.0)),
            degradation=DegradationPolicy.PREMIUM_SHED,
        )
        assert result.degraded_hours == 12
        for h in result.hours:
            assert h.demand_ordinary_rps > 0
            # premium-shed admits no ordinary traffic on degraded hours
            assert h.served_ordinary_rps == 0.0

    def test_budget_loss_restores_from_checkpoint(self, world, sim):
        budgeter = world.budgeter(_monthly(world, sim))
        tel = Telemetry()
        with use_telemetry(tel):
            result = sim.run_capping(
                budgeter,
                hours=12,
                faults=FaultInjector(FaultSpec(budget_loss=1.0)),
            )
        values = _counters(tel)
        assert values["resilience.budgeter_restarts"] == 12
        # restore-from-checkpoint keeps the budget sequence coherent:
        # every hour still gets a finite budget and records its spend.
        assert len(result.hours) == 12
        assert all(np.isfinite(h.budget) for h in result.hours)
