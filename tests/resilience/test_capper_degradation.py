"""BillCapper degradation: solver-stack failures become degraded hours."""

import pytest

from repro.core import BillCapper, CappingStep
from repro.resilience import DegradationPolicy
from repro.solver import InfeasibleError, SolverError, SolverLimitError
from repro.telemetry import Telemetry, snapshot, summarize, use_telemetry


class _ExplodingMinimizer:
    """Cost-minimizer stub whose solver stack always dies."""

    def __init__(self, exc=None):
        self.exc = exc or SolverLimitError("stub: node limit exhausted")
        self.calls = 0

    def solve(self, site_hours, total_rate_rps):
        self.calls += 1
        raise self.exc


class TestDegradationOff:
    def test_solver_failure_propagates_by_default(self, three_sites):
        capper = BillCapper(cost_minimizer=_ExplodingMinimizer())
        with pytest.raises(SolverLimitError):
            capper.decide(three_sites, 1e6, 1e6, float("inf"))

    def test_forced_failure_propagates_by_default(self, three_sites):
        capper = BillCapper()
        with pytest.raises(SolverError):
            capper.decide(
                three_sites, 1e6, 1e6, float("inf"),
                forced_failure=SolverError("injected"),
            )


class TestDegradationOn:
    def test_solver_failure_becomes_degraded_decision(self, three_sites):
        capper = BillCapper(
            cost_minimizer=_ExplodingMinimizer(),
            degradation=DegradationPolicy.PROPORTIONAL,
        )
        d = capper.decide(three_sites, 1e6, 2e6, 50.0)
        assert d.step is CappingStep.DEGRADED
        assert d.served_premium_rps == pytest.approx(1e6)
        assert d.served_ordinary_rps == pytest.approx(2e6)
        assert d.budget == 50.0

    def test_infeasible_also_degrades(self, three_sites):
        capper = BillCapper(
            cost_minimizer=_ExplodingMinimizer(InfeasibleError("stub")),
            degradation=DegradationPolicy.PREMIUM_SHED,
        )
        d = capper.decide(three_sites, 1e6, 2e6, 50.0)
        assert d.step is CappingStep.DEGRADED
        assert d.served_ordinary_rps == 0.0

    def test_non_solver_errors_still_propagate(self, three_sites):
        capper = BillCapper(
            cost_minimizer=_ExplodingMinimizer(TypeError("a genuine bug")),
            degradation=DegradationPolicy.PROPORTIONAL,
        )
        with pytest.raises(TypeError):
            capper.decide(three_sites, 1e6, 1e6, float("inf"))

    def test_hold_last_uses_previous_successful_decision(self, three_sites):
        capper = BillCapper(degradation=DegradationPolicy.HOLD_LAST)
        good = capper.decide(three_sites, 1e6, 1e6, float("inf"))
        assert good.step is CappingStep.COST_MIN
        held = capper.decide(
            three_sites, 5e6, 5e6, float("inf"),
            forced_failure=SolverError("injected"),
        )
        assert held.step is CappingStep.DEGRADED
        assert {a.site: a.rate_rps for a in held.allocations} == pytest.approx(
            {a.site: a.rate_rps for a in good.allocations}
        )

    def test_degraded_hours_do_not_pollute_hold_last_history(self, three_sites):
        capper = BillCapper(degradation=DegradationPolicy.HOLD_LAST)
        good = capper.decide(three_sites, 1e6, 1e6, float("inf"))
        for _ in range(2):  # two consecutive failures hold the same plan
            held = capper.decide(
                three_sites, 8e6, 8e6, float("inf"),
                forced_failure=SolverError("injected"),
            )
            assert {a.site: a.rate_rps for a in held.allocations} == pytest.approx(
                {a.site: a.rate_rps for a in good.allocations}
            )

    def test_validation_still_raises_before_degradation(self, three_sites):
        capper = BillCapper(degradation=DegradationPolicy.PROPORTIONAL)
        with pytest.raises(ValueError):
            capper.decide(three_sites, -1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            capper.decide(three_sites, 1.0, 0.0, -10.0)


class TestTelemetry:
    def test_degraded_decisions_counted(self, three_sites):
        capper = BillCapper(
            cost_minimizer=_ExplodingMinimizer(),
            degradation=DegradationPolicy.PROPORTIONAL,
        )
        tel = Telemetry()
        with use_telemetry(tel):
            capper.decide(three_sites, 1e6, 1e6, 50.0)
            capper.decide(three_sites, 1e6, 1e6, 50.0)
        counters = summarize(snapshot(tel))["counters"]
        assert counters["capper.degraded"] == 2
        assert counters["capper.degraded.SolverLimitError"] == 2
        assert counters["capper.step.degraded"] == 2
