"""Fault injection beyond Cost Capping: every strategy degrades gracefully.

Fault tolerance used to be a `run_capping` special case; the engine's
middleware makes it a property of the pipeline. These tests pin the two
halves of that contract for the other registered strategies:

* a faulted month *completes* — solver faults turn into degraded hours
  instead of raising out of the run;
* ``faults=None`` (and a zero-probability injector) stays bit-identical
  to a plain run for **all** strategies.
"""

import pytest

from repro.experiments import paper_world
from repro.resilience import DegradationPolicy, FaultInjector, FaultSpec
from repro.sim import Engine, available_strategies
from repro.telemetry import Telemetry, snapshot, summarize, use_telemetry

HOURS = 12

CHAOS = FaultSpec(
    price_stale=0.2,
    sensor_dropout=0.15,
    solver_error=0.3,
    solver_timeout=0.15,
    seed=11,
)


@pytest.fixture(scope="module")
def world():
    return paper_world(max_servers=500_000, seed=3)


@pytest.fixture(scope="module")
def engine(world):
    return Engine(world.sites, world.workload, world.mix)


class TestFaultedPriceTakers:
    def test_faulted_min_only_month_completes_degraded(self, engine):
        """The headline regression: a faulted Min-Only month used to be
        impossible (faults were a run_capping-only feature). Now the
        engine catches the injected solver failures and dispatches those
        hours through the degradation path."""
        tel = Telemetry()
        with use_telemetry(tel):
            result = engine.run(
                "min-only-avg", hours=HOURS, faults=FaultInjector(CHAOS)
            )
        expected = sum(
            1
            for t in range(HOURS)
            if FaultInjector(CHAOS).faults_for(t).solver_exception() is not None
        )
        assert expected > 0
        assert len(result.hours) == HOURS
        assert result.degraded_hours == expected
        counters = summarize(snapshot(tel))["counters"]
        assert counters["resilience.degraded_hours"] == expected
        assert counters["engine.degraded"] == expected
        # Non-degraded hours still dispatch through the real solver.
        assert any(not h.degraded for h in result.hours)

    def test_every_faulted_hour_still_serves(self, engine):
        result = engine.run(
            "min-only-avg",
            hours=HOURS,
            faults=FaultInjector(FaultSpec(solver_error=1.0, seed=5)),
        )
        assert result.degraded_hours == HOURS
        for h in result.hours:
            assert h.sites
            assert h.realized_cost >= 0.0
            assert h.served_total_rps > 0.0

    def test_explicit_policy_reaches_engine_fallback(self, engine):
        result = engine.run(
            "min-only-avg",
            hours=6,
            faults=FaultInjector(FaultSpec(solver_error=1.0, seed=5)),
            degradation=DegradationPolicy.PREMIUM_SHED,
        )
        assert result.degraded_hours == 6
        for h in result.hours:
            assert h.demand_ordinary_rps > 0
            assert h.served_ordinary_rps == 0.0

    def test_hold_last_reuses_previous_solution(self, engine):
        # Fault every hour after the first solved one: HOLD_LAST should
        # freeze the dispatch at the last good allocation.
        spec = FaultSpec(solver_error=1.0, seed=5)
        sched = FaultInjector(spec)
        assert sched.faults_for(0).solver_exception() is not None
        result = engine.run(
            "min-only-avg",
            hours=4,
            faults=FaultInjector(spec),
            degradation=DegradationPolicy.HOLD_LAST,
        )
        assert len(result.hours) == 4

    def test_clean_run_without_policy_still_raises(self, engine):
        """No faults wired and no policy: genuine solver failures keep
        raising — the engine only degrades when asked to."""
        from repro.sim.strategies import MinOnlyStrategy
        from repro.core import PriceMode
        from repro.solver import SolverError

        class Exploding(MinOnlyStrategy):
            def decide(self, ctx):
                raise SolverError("boom")

        with pytest.raises(SolverError, match="boom"):
            engine.run(Exploding(mode=PriceMode.AVG), hours=1)

    def test_seeded_chaos_reproducible(self, engine):
        a = engine.run("min-only-avg", hours=HOURS, faults=FaultInjector(CHAOS))
        b = engine.run("min-only-avg", hours=HOURS, faults=FaultInjector(CHAOS))
        assert [h.to_dict() for h in a.hours] == [h.to_dict() for h in b.hours]


class TestFaultFreePathUnchanged:
    @pytest.mark.parametrize(
        "name", [s for s in available_strategies() if s != "hierarchical"]
    )
    def test_faults_none_is_bit_identical(self, engine, name):
        plain = engine.run(name, hours=6)
        wired = engine.run(name, hours=6, faults=None)
        assert [h.to_dict() for h in plain.hours] == [
            h.to_dict() for h in wired.hours
        ]

    @pytest.mark.parametrize(
        "name", [s for s in available_strategies() if s != "hierarchical"]
    )
    def test_zero_probability_injector_is_bit_identical(self, engine, name):
        plain = engine.run(name, hours=6)
        wired = engine.run(
            name, hours=6, faults=FaultInjector(FaultSpec(seed=99))
        )
        assert [h.to_dict() for h in plain.hours] == [
            h.to_dict() for h in wired.hours
        ]
        assert wired.degraded_hours == 0

    def test_hierarchical_faults_none_matches(self, world, engine):
        plain = engine.run("hierarchical", hours=1)
        wired = engine.run("hierarchical", hours=1, faults=None)
        assert [h.to_dict() for h in plain.hours] == [
            h.to_dict() for h in wired.hours
        ]
