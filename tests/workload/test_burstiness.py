"""Tests for request-level burstiness generation and estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import QueueParams, required_servers
from repro.workload import (
    erlang_arrivals,
    estimate_ca2,
    estimate_cb2,
    estimate_queue_params,
    hyperexp_arrivals,
    lognormal_sizes,
    poisson_arrivals,
)

N = 200_000


class TestGenerators:
    def test_poisson_mean_and_ca2(self):
        x = poisson_arrivals(rate=100.0, n=N, seed=1)
        assert x.mean() == pytest.approx(0.01, rel=0.02)
        assert estimate_ca2(x) == pytest.approx(1.0, rel=0.05)

    def test_hyperexp_hits_target_ca2(self):
        for target in (2.0, 4.0, 8.0):
            x = hyperexp_arrivals(rate=50.0, target_ca2=target, n=N, seed=2)
            assert x.mean() == pytest.approx(0.02, rel=0.03)
            assert estimate_ca2(x) == pytest.approx(target, rel=0.10)

    def test_erlang_hits_target_ca2(self):
        for k in (2, 4, 10):
            x = erlang_arrivals(rate=50.0, k=k, n=N, seed=3)
            assert x.mean() == pytest.approx(0.02, rel=0.02)
            assert estimate_ca2(x) == pytest.approx(1.0 / k, rel=0.08)

    def test_lognormal_sizes(self):
        s = lognormal_sizes(mean_size=10.0, target_cb2=3.0, n=N, seed=4)
        assert s.mean() == pytest.approx(10.0, rel=0.05)
        assert estimate_cb2(s) == pytest.approx(3.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10)
        with pytest.raises(ValueError):
            hyperexp_arrivals(1.0, 0.8, 10)  # needs CA2 > 1
        with pytest.raises(ValueError):
            erlang_arrivals(1.0, 0, 10)
        with pytest.raises(ValueError):
            lognormal_sizes(1.0, 0.0, 10)


class TestEstimators:
    def test_constant_samples_zero_cv(self):
        assert estimate_ca2(np.full(100, 5.0)) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_ca2(np.array([1.0]))
        with pytest.raises(ValueError):
            estimate_ca2(np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            estimate_ca2(np.zeros(10))

    def test_estimate_queue_params(self):
        arr = hyperexp_arrivals(100.0, 3.0, N, seed=5)
        sizes = lognormal_sizes(1.0, 2.0, N, seed=6)
        qp = estimate_queue_params(arr, sizes)
        assert isinstance(qp, QueueParams)
        assert qp.ca2 == pytest.approx(3.0, rel=0.12)
        assert qp.cb2 == pytest.approx(2.0, rel=0.12)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=1.5, max_value=10.0), st.integers(0, 100))
    def test_round_trip_property(self, target, seed):
        x = hyperexp_arrivals(rate=10.0, target_ca2=target, n=50_000, seed=seed)
        assert estimate_ca2(x) == pytest.approx(target, rel=0.35)


class TestProvisioningConsequences:
    def test_bursty_traffic_needs_more_servers(self):
        # Parameters where the variability headroom K/(Rs - 1/mu) spans
        # several servers, so the difference survives integral rounding.
        lam, mu, rs = 1e3, 10.0, 0.15
        calm = estimate_queue_params(
            erlang_arrivals(100.0, 4, N, seed=7), lognormal_sizes(1.0, 0.5, N, seed=8)
        )
        bursty = estimate_queue_params(
            hyperexp_arrivals(100.0, 6.0, N, seed=9),
            lognormal_sizes(1.0, 4.0, N, seed=10),
        )
        n_calm = required_servers(lam, mu, rs, calm)
        n_bursty = required_servers(lam, mu, rs, bursty)
        assert n_bursty > n_calm
