"""Tests for synthetic workload generation, the customer mix, and prediction."""

import numpy as np
import pytest

from repro.workload import (
    HOURS_PER_WEEK,
    CustomerMix,
    FlashCrowd,
    HourOfWeekPredictor,
    PAPER_PREMIUM_FRACTION,
    Trace,
    paper_two_month_workload,
    wikipedia_like_trace,
)


class TestWikipediaLikeTrace:
    def test_shape_and_positivity(self):
        t = wikipedia_like_trace(24 * 30, peak_rps=1e6, seed=1)
        assert t.hours == 720
        assert np.all(t.rates_rps > 0)

    def test_reproducible(self):
        a = wikipedia_like_trace(100, 1e5, seed=9)
        b = wikipedia_like_trace(100, 1e5, seed=9)
        assert np.array_equal(a.rates_rps, b.rates_rps)
        c = wikipedia_like_trace(100, 1e5, seed=10)
        assert not np.array_equal(a.rates_rps, c.rates_rps)

    def test_peak_close_to_requested(self):
        t = wikipedia_like_trace(24 * 14, 1e6, seed=2, noise=0.0)
        assert t.rates_rps.max() == pytest.approx(1e6, rel=0.05)

    def test_weekly_pattern_visible(self):
        t = wikipedia_like_trace(24 * 28, 1e6, seed=3, noise=0.0, start_weekday=0)
        weekday = t.rates_rps[: 24 * 5].mean()
        weekend = t.rates_rps[24 * 5 : 24 * 7].mean()
        assert weekend < weekday

    def test_diurnal_pattern_visible(self):
        t = wikipedia_like_trace(24, 1e6, seed=4, noise=0.0)
        assert t.rates_rps.argmin() in range(1, 7)
        assert t.rates_rps.argmax() in range(14, 20)

    def test_week_over_week_self_similarity(self):
        # The budgeter depends on the weekly pattern being predictive.
        t = wikipedia_like_trace(HOURS_PER_WEEK * 2, 1e6, seed=5, noise=0.02)
        w1 = t.rates_rps[:HOURS_PER_WEEK]
        w2 = t.rates_rps[HOURS_PER_WEEK:]
        corr = np.corrcoef(w1, w2)[0, 1]
        assert corr > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            wikipedia_like_trace(0, 1e6)
        with pytest.raises(ValueError):
            wikipedia_like_trace(10, 0.0)


class TestFlashCrowd:
    def test_profile_boosts_window_only(self):
        fc = FlashCrowd(start_hour=10, duration_h=5, magnitude=3.0)
        prof = fc.profile(24)
        assert prof[9] == 1.0
        assert prof[10] == pytest.approx(3.0)
        assert np.all(prof[10:15] > 1.0)
        assert prof[15] == 1.0

    def test_decays(self):
        prof = FlashCrowd(0, 6, 4.0).profile(10)
        assert np.all(np.diff(prof[:6]) < 0)

    def test_applied_to_trace(self):
        fc = FlashCrowd(5, 3, 2.0)
        base = wikipedia_like_trace(24, 100.0, seed=0, noise=0.0)
        boosted = wikipedia_like_trace(24, 100.0, seed=0, noise=0.0, flash_crowds=(fc,))
        assert boosted.rates_rps[5] == pytest.approx(2.0 * base.rates_rps[5])
        assert boosted.rates_rps[0] == pytest.approx(base.rates_rps[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowd(-1, 5, 2.0)
        with pytest.raises(ValueError):
            FlashCrowd(0, 0, 2.0)
        with pytest.raises(ValueError):
            FlashCrowd(0, 5, 0.5)


class TestPaperTwoMonthWorkload:
    def test_month_lengths_and_phases(self):
        hist, month = paper_two_month_workload(1e6)
        assert hist.hours == 720 and month.hours == 720
        assert hist.start_weekday == 0  # Oct 1st 2007: Monday
        assert month.start_weekday == 3  # Nov 1st 2007: Thursday

    def test_months_differ_but_share_structure(self):
        hist, month = paper_two_month_workload(1e6)
        assert not np.array_equal(hist.rates_rps, month.rates_rps)
        # Same weekly structure: high correlation by hour-of-week profile.
        def profile(trace):
            sums = np.zeros(HOURS_PER_WEEK)
            counts = np.zeros(HOURS_PER_WEEK)
            np.add.at(sums, trace.hour_of_week(), trace.rates_rps)
            np.add.at(counts, trace.hour_of_week(), 1.0)
            return sums / counts

        assert np.corrcoef(profile(hist), profile(month))[0, 1] > 0.9


class TestCustomerMix:
    def test_default_is_80_20(self):
        assert CustomerMix().premium_fraction == PAPER_PREMIUM_FRACTION

    def test_split(self):
        mix = CustomerMix(0.8)
        t = Trace(np.array([100.0, 200.0]))
        prem, ordi = mix.split(t)
        assert prem.rates_rps.tolist() == pytest.approx([80.0, 160.0])
        assert ordi.rates_rps.tolist() == pytest.approx([20.0, 40.0])

    def test_scalar_helpers(self):
        mix = CustomerMix(0.75)
        assert mix.premium_rate(100.0) == 75.0
        assert mix.ordinary_rate(100.0) == 25.0
        with pytest.raises(ValueError):
            mix.premium_rate(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CustomerMix(1.2)


class TestHourOfWeekPredictor:
    def _history(self, weeks=4, seed=0):
        return wikipedia_like_trace(
            HOURS_PER_WEEK * weeks, 1e6, seed=seed, noise=0.02, start_weekday=0
        )

    def test_needs_full_week(self):
        with pytest.raises(ValueError):
            HourOfWeekPredictor(Trace(np.ones(100)))

    def test_window_averages_most_recent_weeks(self):
        # Constant history -> exact prediction.
        t = Trace(np.full(HOURS_PER_WEEK * 3, 50.0))
        p = HourOfWeekPredictor(t, history_weeks=2)
        assert p.predicted_rate(0) == pytest.approx(50.0)

    def test_eviction_keeps_window(self):
        rates = np.concatenate(
            [np.full(HOURS_PER_WEEK, 10.0), np.full(HOURS_PER_WEEK, 30.0)]
        )
        p = HourOfWeekPredictor(Trace(rates), history_weeks=1)
        # Only the latest week should remain.
        assert p.predicted_rate(5) == pytest.approx(30.0)

    def test_weights_sum_to_one(self):
        p = HourOfWeekPredictor(self._history())
        w = p.weekly_weights()
        assert w.shape == (HOURS_PER_WEEK,)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w >= 0)

    def test_prediction_quality_on_selfsimilar_workload(self):
        hist = self._history(weeks=4, seed=1)
        future = wikipedia_like_trace(
            HOURS_PER_WEEK, 1e6, seed=99, noise=0.02, start_weekday=0
        )
        p = HourOfWeekPredictor(hist)
        forecast = p.predict_trace(HOURS_PER_WEEK, start_weekday=0)
        rel_err = np.abs(forecast.rates_rps - future.rates_rps) / future.rates_rps
        assert np.median(rel_err) < 0.10

    def test_predict_trace_phase(self):
        p = HourOfWeekPredictor(self._history())
        f = p.predict_trace(24, start_weekday=2)
        assert f.rates_rps[0] == pytest.approx(p.predicted_rate(48))

    def test_online_observation(self):
        p = HourOfWeekPredictor(Trace(np.full(HOURS_PER_WEEK, 10.0)), history_weeks=2)
        p.observe(0, 30.0)
        assert p.predicted_rate(0) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            p.observe(200, 1.0)
        with pytest.raises(ValueError):
            p.observe(0, -1.0)

    def test_predicted_rate_validates_like_observe(self):
        # Regression: predicted_rate used to wrap out-of-range hours
        # with `% 168` while observe raised — hiding query-side
        # indexing bugs that the write side would have caught.
        p = HourOfWeekPredictor(Trace(np.full(HOURS_PER_WEEK, 10.0)))
        with pytest.raises(ValueError, match="0..167"):
            p.predicted_rate(HOURS_PER_WEEK)
        with pytest.raises(ValueError, match="0..167"):
            p.predicted_rate(-1)

    def test_zero_history_uniform_weights(self):
        p = HourOfWeekPredictor(Trace(np.zeros(HOURS_PER_WEEK) + 0.0))
        w = p.weekly_weights()
        assert np.allclose(w, 1.0 / HOURS_PER_WEEK)
