"""Tests for trace CSV I/O and the alternative forecasters."""

import numpy as np
import pytest

from repro.workload import (
    HOURS_PER_WEEK,
    EwmaByHourPredictor,
    HourOfWeekPredictor,
    LastWeekPredictor,
    Trace,
    evaluate_predictor,
    read_trace_csv,
    trace_to_csv_string,
    wikipedia_like_trace,
    write_trace_csv,
)


class TestCsvIo:
    def test_round_trip(self, tmp_path):
        t = wikipedia_like_trace(100, 1e5, seed=4, start_weekday=3, name="demo")
        path = write_trace_csv(t, tmp_path / "demo.csv")
        t2 = read_trace_csv(path)
        assert t2.name == "demo"
        assert t2.start_weekday == 3
        assert np.array_equal(t2.rates_rps, t.rates_rps)

    def test_csv_string_has_metadata(self):
        t = Trace(np.array([1.0, 2.0]), start_weekday=5, name="tiny")
        s = trace_to_csv_string(t)
        assert "# name: tiny" in s
        assert "# start_weekday: 5" in s
        assert "hour,rate_rps" in s

    def test_read_without_metadata(self, tmp_path):
        p = tmp_path / "bare.csv"
        p.write_text("hour,rate_rps\n0,10.5\n1,11.0\n")
        t = read_trace_csv(p)
        assert t.name == "bare"
        assert t.start_weekday == 0
        assert t.rates_rps.tolist() == [10.5, 11.0]

    def test_non_contiguous_hours_rejected(self, tmp_path):
        p = tmp_path / "gap.csv"
        p.write_text("hour,rate_rps\n0,1.0\n2,2.0\n")
        with pytest.raises(ValueError, match="contiguous"):
            read_trace_csv(p)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text("hour,rate_rps\n")
        with pytest.raises(ValueError, match="no data"):
            read_trace_csv(p)

    def test_malformed_row_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("hour,rate_rps\n0\n")
        with pytest.raises(ValueError, match="malformed"):
            read_trace_csv(p)


def _history(weeks=4, seed=0):
    return wikipedia_like_trace(
        HOURS_PER_WEEK * weeks, 1e6, seed=seed, noise=0.03, start_weekday=0
    )


class TestEwmaPredictor:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EwmaByHourPredictor(_history(), alpha=0.0)
        with pytest.raises(ValueError):
            EwmaByHourPredictor(_history(), alpha=1.5)

    def test_needs_full_week(self):
        with pytest.raises(ValueError):
            EwmaByHourPredictor(Trace(np.ones(10)))

    def test_constant_history_exact(self):
        p = EwmaByHourPredictor(Trace(np.full(HOURS_PER_WEEK * 2, 42.0)))
        assert p.predicted_rate(7) == pytest.approx(42.0)

    def test_reacts_to_level_shift_faster_than_window(self):
        # Two flat weeks at 10, then observe a shift to 30 once.
        hist = Trace(np.full(HOURS_PER_WEEK * 2, 10.0))
        ewma = EwmaByHourPredictor(hist, alpha=0.7)
        window = HourOfWeekPredictor(hist, history_weeks=4)
        ewma.observe(0, 30.0)
        window.observe(0, 30.0)
        assert ewma.predicted_rate(0) > window.predicted_rate(0)

    def test_weights_sum_to_one(self):
        w = EwmaByHourPredictor(_history()).weekly_weights()
        assert w.sum() == pytest.approx(1.0)

    def test_budgeter_compatible(self):
        from repro.core import Budgeter

        b = Budgeter(100.0, EwmaByHourPredictor(_history()), month_hours=48)
        assert b.hourly_budget() > 0


class TestLastWeekPredictor:
    def test_persistence(self):
        rates = np.concatenate(
            [np.full(HOURS_PER_WEEK, 10.0), np.full(HOURS_PER_WEEK, 25.0)]
        )
        p = LastWeekPredictor(Trace(rates))
        assert p.predicted_rate(3) == pytest.approx(25.0)

    def test_observe_overwrites(self):
        p = LastWeekPredictor(Trace(np.full(HOURS_PER_WEEK, 5.0)))
        p.observe(0, 99.0)
        assert p.predicted_rate(0) == pytest.approx(99.0)


class TestEvaluatePredictor:
    def test_perfect_forecast_on_deterministic_trace(self):
        hist = wikipedia_like_trace(HOURS_PER_WEEK, 1e5, seed=0, noise=0.0)
        future = wikipedia_like_trace(HOURS_PER_WEEK, 1e5, seed=0, noise=0.0)
        score = evaluate_predictor(LastWeekPredictor(hist), future, update=False)
        assert score.mape == pytest.approx(0.0, abs=1e-12)
        assert score.rmse == pytest.approx(0.0, abs=1e-6)
        assert score.n_hours == HOURS_PER_WEEK

    def test_scores_reasonable_on_noisy_trace(self):
        hist = _history(weeks=4, seed=1)
        future = wikipedia_like_trace(
            HOURS_PER_WEEK * 2, 1e6, seed=77, noise=0.03, start_weekday=0
        )
        score = evaluate_predictor(HourOfWeekPredictor(hist), future)
        assert 0.0 < score.mape < 0.15
        assert score.n_hours == future.hours

    def test_window_average_beats_persistence_on_noise(self):
        # The paper's 2-week average should beat naive persistence on a
        # noisy but stationary workload (averaging cancels noise).
        hist = _history(weeks=4, seed=2)
        future = wikipedia_like_trace(
            HOURS_PER_WEEK * 2, 1e6, seed=55, noise=0.06, start_weekday=0
        )
        s_window = evaluate_predictor(HourOfWeekPredictor(hist), future)
        s_naive = evaluate_predictor(LastWeekPredictor(hist), future)
        assert s_window.rmse < s_naive.rmse
