"""Tests for the Trace container."""

import numpy as np
import pytest

from repro.workload import HOURS_PER_WEEK, Trace


def make_trace(hours=HOURS_PER_WEEK * 2, start_weekday=0):
    rng = np.random.default_rng(0)
    return Trace(rng.uniform(10.0, 100.0, size=hours), start_weekday, "t")


class TestConstruction:
    def test_valid(self):
        t = make_trace()
        assert t.hours == 336
        assert len(t) == 336

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.array([]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.ones((2, 2)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.array([1.0, -1.0]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.array([1.0, np.nan]))

    def test_bad_weekday_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.ones(10), start_weekday=7)

    def test_list_coerced_to_array(self):
        t = Trace([1.0, 2.0, 3.0])
        assert isinstance(t.rates_rps, np.ndarray)


class TestDerived:
    def test_requests_per_hour(self):
        t = Trace(np.array([2.0, 3.0]))
        assert t.requests_per_hour.tolist() == [7200.0, 10800.0]
        assert t.total_requests == pytest.approx(18000.0)

    def test_hour_of_week_phase(self):
        t = Trace(np.ones(48), start_weekday=3)  # Thursday
        how = t.hour_of_week()
        assert how[0] == 3 * 24
        assert how[-1] == (3 * 24 + 47) % HOURS_PER_WEEK

    def test_hour_of_week_wraps(self):
        t = Trace(np.ones(HOURS_PER_WEEK + 5), start_weekday=6)
        how = t.hour_of_week()
        assert how[HOURS_PER_WEEK] == how[0]


class TestSlicing:
    def test_slice_hours(self):
        t = make_trace()
        s = t.slice_hours(24, 72)
        assert s.hours == 48
        assert s.start_weekday == 1
        assert np.array_equal(s.rates_rps, t.rates_rps[24:72])

    def test_slice_validation(self):
        t = make_trace(48)
        with pytest.raises(ValueError):
            t.slice_hours(10, 10)
        with pytest.raises(ValueError):
            t.slice_hours(0, 100)

    def test_split_weeks(self):
        t = make_trace(HOURS_PER_WEEK * 2 + 24)
        weeks = t.split_weeks()
        assert [w.hours for w in weeks] == [168, 168, 24]
        assert weeks[1].start_weekday == 0
        assert np.array_equal(
            np.concatenate([w.rates_rps for w in weeks]), t.rates_rps
        )


class TestTransforms:
    def test_scaled(self):
        t = Trace(np.array([1.0, 2.0]))
        assert t.scaled(3.0).rates_rps.tolist() == [3.0, 6.0]
        with pytest.raises(ValueError):
            t.scaled(-1.0)

    def test_scaled_to_peak(self):
        t = Trace(np.array([1.0, 4.0, 2.0]))
        s = t.scaled_to_peak(100.0)
        assert s.rates_rps.max() == pytest.approx(100.0)
        assert s.rates_rps.tolist() == pytest.approx([25.0, 100.0, 50.0])

    def test_scaled_to_peak_zero_trace_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(5)).scaled_to_peak(10.0)

    def test_split_conserves_mass(self):
        t = make_trace()
        a, b = t.split(0.8)
        assert np.allclose(a.rates_rps + b.rates_rps, t.rates_rps)
        assert np.allclose(a.rates_rps, 0.8 * t.rates_rps)

    def test_split_validation(self):
        with pytest.raises(ValueError):
            make_trace().split(1.5)
