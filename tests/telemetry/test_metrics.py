"""Registry and instrument semantics (`repro.telemetry.metrics`)."""

import pytest

from repro.telemetry import MetricRegistry, NullRegistry
from repro.telemetry.metrics import DEFAULT_BUCKETS, Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = MetricRegistry().counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = MetricRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_as_dict(self):
        c = MetricRegistry().counter("events")
        c.inc(4)
        assert c.as_dict() == {"type": "counter", "name": "events", "value": 4.0}


class TestGauge:
    def test_set_and_add(self):
        g = MetricRegistry().gauge("carry")
        g.set(10.0)
        g.add(-3.0)
        assert g.value == 7.0


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("h", boundaries=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(555.5)
        assert h.min == 0.5 and h.max == 500.0

    def test_boundary_value_lands_in_its_bucket(self):
        # bisect_left: an observation equal to a boundary counts as <= it.
        h = Histogram("h", boundaries=(1.0, 10.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_mean_and_quantiles(self):
        h = Histogram("h", boundaries=(1.0, 2.0, 4.0, 8.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        assert h.mean == pytest.approx(6.6 / 4)
        assert h.quantile(0.0) == 0.0 or h.quantile(0.25) <= h.quantile(0.95)
        # p50 falls in the (1, 2] bucket; estimate is its upper bound.
        assert h.quantile(0.5) == 2.0
        # Estimates never exceed the observed max.
        assert h.quantile(1.0) <= h.max

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(2.0, 1.0))

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.as_dict()["min"] == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_collision_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_iteration_sorted_by_name(self):
        reg = MetricRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert [m.name for m in reg] == ["a", "b"]
        assert len(reg) == 2

    def test_get_does_not_create(self):
        reg = MetricRegistry()
        assert reg.get("missing") is None
        assert len(reg) == 0

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestNullRegistry:
    def test_disabled_and_inert(self):
        reg = NullRegistry()
        assert not reg.enabled
        reg.counter("c").inc(5)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(5)
        assert reg.counter("c").value == 0.0
        assert reg.gauge("g").value == 0.0
        assert reg.histogram("h").count == 0
        # Nothing is ever registered.
        assert len(reg) == 0

    def test_shared_singletons(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b")
