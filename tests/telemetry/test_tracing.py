"""Span tracer semantics (`repro.telemetry.tracing` + session scoping)."""

import pytest

from repro.telemetry import (
    NULL,
    Telemetry,
    Tracer,
    get_telemetry,
    use_telemetry,
)
from repro.telemetry.tracing import NullTracer


class TestNesting:
    def test_parent_child_depth_and_ids(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                assert tr.active_depth == 2
        assert outer.depth == 0 and outer.parent_id is None
        assert inner.depth == 1 and inner.parent_id == outer.span_id
        assert tr.active_depth == 0

    def test_children_finish_before_parents(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
        assert [s.name for s in tr.finished] == ["b", "a"]

    def test_sibling_spans_share_parent(self):
        tr = Tracer()
        with tr.span("hour") as hour:
            with tr.span("budget"):
                pass
            with tr.span("dispatch"):
                pass
        by_name = {s.name: s for s in tr.finished}
        assert by_name["budget"].parent_id == hour.span_id
        assert by_name["dispatch"].parent_id == hour.span_id

    def test_durations_monotonic_and_contained(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                sum(range(1000))
        by_name = {s.name: s for s in tr.finished}
        inner, outer = by_name["inner"], by_name["outer"]
        assert inner.duration_s >= 0.0
        assert outer.duration_s >= inner.duration_s
        assert inner.start_s >= outer.start_s

    def test_attrs_at_open_and_set(self):
        tr = Tracer()
        with tr.span("hour", hour=7) as sp:
            sp.set(step="cost-min")
        assert tr.finished[0].attrs == {"hour": 7, "step": "cost-min"}

    def test_exception_annotates_and_finishes_span(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("work"):
                raise RuntimeError("boom")
        assert tr.finished[0].attrs["error"] == "RuntimeError"
        assert tr.active_depth == 0

    def test_as_dict_shape(self):
        tr = Tracer()
        with tr.span("x", k=1):
            pass
        d = tr.as_dicts()[0]
        assert d["type"] == "span"
        assert d["name"] == "x"
        assert d["attrs"] == {"k": 1}
        assert d["duration_s"] >= 0.0


class TestNullTracer:
    def test_shared_noop_span(self):
        tr = NullTracer()
        with tr.span("a") as a:
            with tr.span("b") as b:
                assert a is b
        assert tr.finished == []
        assert not tr.enabled


class TestSessionScoping:
    def test_default_is_null(self):
        assert get_telemetry() is NULL
        assert not get_telemetry().enabled

    def test_use_telemetry_installs_and_restores(self):
        tel = Telemetry()
        with use_telemetry(tel):
            assert get_telemetry() is tel
            get_telemetry().counter("seen").inc()
        assert get_telemetry() is NULL
        assert tel.registry.counter("seen").value == 1.0

    def test_use_telemetry_restores_on_exception(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with use_telemetry(tel):
                raise ValueError
        assert get_telemetry() is NULL

    def test_none_means_null(self):
        with use_telemetry(None):
            assert get_telemetry() is NULL

    def test_nested_scopes(self):
        a, b = Telemetry(), Telemetry()
        with use_telemetry(a):
            with use_telemetry(b):
                assert get_telemetry() is b
            assert get_telemetry() is a
