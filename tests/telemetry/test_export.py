"""JSONL round-trip, aggregation, and rendering (`repro.telemetry.export`)."""

import json

import pytest

from repro.telemetry import (
    Telemetry,
    format_summary,
    read_jsonl,
    snapshot,
    summarize,
    write_jsonl,
)


def _populated_telemetry() -> Telemetry:
    tel = Telemetry()
    with tel.span("hour", hour=0):
        with tel.span("dispatch"):
            pass
    tel.counter("solver.stub.solves").inc(3)
    tel.gauge("budgeter.carryover").set(12.5)
    h = tel.histogram("solver.stub.wall_s")
    for v in (0.001, 0.002, 0.004):
        h.observe(v)
    return tel


class TestRoundTrip:
    def test_jsonl_preserves_everything(self, tmp_path):
        tel = _populated_telemetry()
        path = write_jsonl(tel, tmp_path / "trace.jsonl")
        back = read_jsonl(path)
        orig = snapshot(tel)
        assert back.spans == orig.spans
        assert back.counters == orig.counters
        assert back.gauges == orig.gauges
        assert back.histograms == orig.histograms
        assert back.meta["version"] == 1

    def test_each_line_is_self_describing_json(self, tmp_path):
        path = write_jsonl(_populated_telemetry(), tmp_path / "t.jsonl")
        kinds = set()
        for line in path.read_text().splitlines():
            record = json.loads(line)
            kinds.add(record["type"])
        assert kinds == {"meta", "span", "counter", "gauge", "histogram"}

    def test_unknown_record_kinds_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"type": "span", "name": "x", "duration_s": 1.0,
                        "start_s": 0.0, "depth": 0, "parent_id": None,
                        "span_id": 1, "attrs": {}}) + "\n"
            + json.dumps({"type": "from-the-future", "name": "y"}) + "\n"
        )
        snap = read_jsonl(path)
        assert len(snap.spans) == 1

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n\n")
        assert read_jsonl(path).empty


class TestSummarize:
    def test_span_aggregates(self):
        agg = summarize(snapshot(_populated_telemetry()))
        hour = agg["spans"]["hour"]
        assert hour["count"] == 1
        assert hour["total_s"] == hour["mean_s"] == hour["max_s"]
        assert agg["spans"]["dispatch"]["max_s"] <= hour["max_s"]

    def test_metric_aggregates(self):
        agg = summarize(snapshot(_populated_telemetry()))
        assert agg["counters"]["solver.stub.solves"] == 3.0
        assert agg["gauges"]["budgeter.carryover"] == 12.5
        wall = agg["histograms"]["solver.stub.wall_s"]
        assert wall["count"] == 3
        assert wall["mean"] == pytest.approx(0.007 / 3)
        assert wall["p50"] <= wall["p95"] <= wall["max"]

    def test_percentiles_ordered_over_many_spans(self):
        tel = Telemetry()
        for i in range(50):
            with tel.span("hour", hour=i):
                pass
        s = summarize(snapshot(tel))["spans"]["hour"]
        assert s["count"] == 50
        assert s["p50_s"] <= s["p95_s"] <= s["max_s"]

    def test_summary_is_json_serializable(self):
        json.dumps(summarize(snapshot(_populated_telemetry())))


class TestFormatting:
    def test_tables_mention_all_sections(self):
        out = format_summary(snapshot(_populated_telemetry()))
        for token in ("== spans ==", "== histograms ==", "== counters ==",
                      "== gauges ==", "hour", "solver.stub.wall_s"):
            assert token in out

    def test_empty_snapshot(self):
        assert format_summary(snapshot(Telemetry())) == "(no telemetry recorded)"
