"""Tests for the rotating JSONL writer used by ``repro serve``."""

import json

import pytest

from repro.telemetry import RotatingJsonlWriter
from repro.telemetry.export import read_jsonl


def _record(i: int) -> dict:
    return {"type": "counter", "name": f"c{i}", "value": i}


class TestValidation:
    def test_rejects_bad_limits(self, tmp_path):
        with pytest.raises(ValueError):
            RotatingJsonlWriter(tmp_path / "t.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            RotatingJsonlWriter(tmp_path / "t.jsonl", flush_every=0)
        with pytest.raises(ValueError):
            RotatingJsonlWriter(tmp_path / "t.jsonl", keep=0)

    def test_write_after_close_errors(self, tmp_path):
        w = RotatingJsonlWriter(tmp_path / "t.jsonl")
        w.close()
        with pytest.raises(ValueError):
            w.write(_record(0))


class TestWriting:
    def test_every_segment_starts_with_meta_header(self, tmp_path):
        with RotatingJsonlWriter(
            tmp_path / "t.jsonl", max_bytes=256, flush_every=1
        ) as w:
            w.write_all(_record(i) for i in range(50))
            assert w.rotations >= 1
            for seg in w.segment_paths():
                first = json.loads(seg.read_text().splitlines()[0])
                assert first["type"] == "meta"

    def test_flush_every_batches_but_close_flushes_all(self, tmp_path):
        w = RotatingJsonlWriter(tmp_path / "t.jsonl", flush_every=1000)
        w.write(_record(0))
        w.close()
        lines = (tmp_path / "t.jsonl").read_text().splitlines()
        assert len(lines) == 2  # meta + the record

    def test_records_written_counts_all_segments(self, tmp_path):
        with RotatingJsonlWriter(
            tmp_path / "t.jsonl", max_bytes=256, flush_every=1
        ) as w:
            w.write_all(_record(i) for i in range(40))
        assert w.records_written == 40


class TestRotation:
    def test_keep_caps_retained_segments(self, tmp_path):
        with RotatingJsonlWriter(
            tmp_path / "t.jsonl", max_bytes=128, flush_every=1, keep=2
        ) as w:
            w.write_all(_record(i) for i in range(100))
            assert w.rotations > 2
            segs = w.segment_paths()
        # keep rotated files + the live one, oldest first.
        assert len(segs) == 3
        assert [s.name for s in segs] == ["t.jsonl.2", "t.jsonl.1", "t.jsonl"]

    def test_newest_records_survive_rotation(self, tmp_path):
        with RotatingJsonlWriter(
            tmp_path / "t.jsonl", max_bytes=256, flush_every=1, keep=2
        ) as w:
            w.write_all(_record(i) for i in range(60))
            segs = w.segment_paths()
        names = [
            r["name"]
            for seg in segs
            for r in map(json.loads, seg.read_text().splitlines())
            if r["type"] == "counter"
        ]
        assert names[-1] == "c59"
        # Segments read oldest-to-newest with no interleaving.
        indices = [int(n[1:]) for n in names]
        assert indices == sorted(indices)

    def test_each_segment_independently_loadable(self, tmp_path):
        with RotatingJsonlWriter(
            tmp_path / "t.jsonl", max_bytes=256, flush_every=1
        ) as w:
            w.write_all(
                {"type": "counter", "name": f"c{i}", "value": float(i)}
                for i in range(50)
            )
            for seg in w.segment_paths():
                read_jsonl(seg)  # raises if a segment lacks its header
