"""End-to-end: a simulated run emits per-hour spans and per-solve stats."""

import pytest

from repro.core import CappingStep
from repro.experiments import paper_world
from repro.sim import Simulator
from repro.telemetry import Telemetry, get_telemetry, snapshot, summarize

HOURS = 3


@pytest.fixture(scope="module")
def world():
    return paper_world(max_servers=500_000, seed=3)


@pytest.fixture(scope="module")
def traced(world):
    """One capped run with telemetry attached; shared by the assertions."""
    tel = Telemetry()
    sim = Simulator(world.sites, world.workload, world.mix, telemetry=tel)
    budgeter = world.budgeter(monthly_budget=5e5)
    result = sim.run_capping(budgeter, hours=HOURS)
    return tel, result


class TestPerHourSpans:
    def test_one_hour_span_per_simulated_hour(self, traced):
        tel, _ = traced
        hours = [s for s in tel.tracer.finished if s.name == "hour"]
        assert len(hours) == HOURS
        assert [s.attrs["hour"] for s in hours] == list(range(HOURS))

    def test_hour_children_cover_the_control_loop(self, traced):
        tel, _ = traced
        by_parent: dict = {}
        for s in tel.tracer.finished:
            by_parent.setdefault(s.parent_id, set()).add(s.name)
        hour_ids = [s.span_id for s in tel.tracer.finished if s.name == "hour"]
        for hid in hour_ids:
            assert {"budget", "dispatch", "local_optimization", "billing"} <= (
                by_parent[hid]
            )

    def test_hour_span_records_step_and_cost(self, traced):
        tel, result = traced
        hours = [s for s in tel.tracer.finished if s.name == "hour"]
        steps = {CappingStep(s.attrs["step"]) for s in hours}
        assert steps == set(result.step_counts())
        for s, record in zip(hours, result.hours):
            assert s.attrs["realized_cost"] == pytest.approx(record.realized_cost)

    def test_capper_span_nested_under_dispatch(self, traced):
        tel, _ = traced
        by_id = {s.span_id: s for s in tel.tracer.finished}
        decides = [s for s in tel.tracer.finished if s.name == "capper.decide"]
        assert len(decides) >= HOURS
        assert all(by_id[s.parent_id].name == "dispatch" for s in decides)


class TestPerSolveStats:
    def test_solver_metrics_recorded(self, traced):
        tel, _ = traced
        agg = summarize(snapshot(tel))
        solves = {
            name: v for name, v in agg["counters"].items()
            if name.startswith("solver.") and name.endswith(".solves")
        }
        # At least one MILP per hour (the default HiGHS backend).
        assert sum(solves.values()) >= HOURS
        wall = next(
            h for name, h in agg["histograms"].items()
            if name.startswith("solver.") and name.endswith(".wall_s")
        )
        assert wall["count"] >= HOURS
        assert wall["total"] > 0.0

    def test_capper_and_budgeter_metrics_recorded(self, traced):
        tel, result = traced
        agg = summarize(snapshot(tel))
        step_counts = {
            name.removeprefix("capper.step."): v
            for name, v in agg["counters"].items()
            if name.startswith("capper.step.")
        }
        assert sum(step_counts.values()) == HOURS
        expected = {s.value: c for s, c in result.step_counts().items()}
        assert step_counts == pytest.approx(expected)
        assert agg["histograms"]["budgeter.spend"]["count"] == HOURS


class TestNonPerturbation:
    def test_traced_run_matches_untraced_run(self, world, traced):
        _, traced_result = traced
        sim = Simulator(world.sites, world.workload, world.mix)
        budgeter = world.budgeter(monthly_budget=5e5)
        plain = sim.run_capping(budgeter, hours=HOURS)
        assert [h.realized_cost for h in plain.hours] == pytest.approx(
            [h.realized_cost for h in traced_result.hours]
        )
        assert plain.step_counts() == traced_result.step_counts()

    def test_untraced_run_records_nothing(self, world):
        sim = Simulator(world.sites, world.workload, world.mix)
        before = get_telemetry()
        result = sim.run_capping(hours=1)
        assert result.total_cost > 0
        assert get_telemetry() is before
        assert not before.enabled or not before.tracer.finished
