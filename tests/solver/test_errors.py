"""The solver error taxonomy (`repro.solver.errors`) and its wiring.

Two things are guarded: the class hierarchy downstream code catches
against, and the ``raise_on_failure=True`` mapping from terminal solve
statuses to exception types that the bill capper's control loop relies
on (`repro.core.cost_min` catches :class:`InfeasibleError` semantics).
"""

import pytest

from repro.solver import (
    InfeasibleError,
    Model,
    ModelingError,
    SolverError,
    SolverLimitError,
    UnboundedError,
)
from repro.solver.branch_bound import BranchBoundSolver


class TestHierarchy:
    def test_all_derive_from_solver_error(self):
        for exc in (ModelingError, InfeasibleError, UnboundedError,
                    SolverLimitError):
            assert issubclass(exc, SolverError)
        assert issubclass(SolverError, Exception)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(SolverError):
            raise InfeasibleError("no feasible point")
        with pytest.raises(SolverError):
            raise SolverLimitError("node limit")


class TestRaiseOnFailure:
    def test_infeasible_model_raises_infeasible_error(self):
        m = Model()
        x = m.var("x", lb=0.0, ub=1.0)
        m.add(x >= 2.0)
        m.minimize(x)
        with pytest.raises(InfeasibleError):
            m.solve(raise_on_failure=True)

    def test_unbounded_model_raises_unbounded_error(self):
        m = Model()
        x = m.var("x")  # lb=0, no upper bound
        m.maximize(x)
        with pytest.raises(UnboundedError):
            m.solve(raise_on_failure=True)

    def test_node_limit_raises_solver_limit_error(self):
        # A tiny knapsack with a 0-node budget and no incumbent.
        m = Model()
        xs = [m.binary(f"x{i}") for i in range(6)]
        m.add(sum((i + 1) * x for i, x in enumerate(xs)) <= 7)
        m.maximize(sum((i + 2) * x for i, x in enumerate(xs)))
        with pytest.raises(SolverLimitError):
            m.solve(backend=BranchBoundSolver(max_nodes=0),
                    raise_on_failure=True)

    def test_default_returns_failed_result_instead(self):
        m = Model()
        x = m.var("x", lb=0.0, ub=1.0)
        m.add(x >= 2.0)
        m.minimize(x)
        res = m.solve()
        assert not res.ok
