"""The solver-backend registry: round-trips, flags, and error surface."""

import numpy as np
import pytest

from repro.solver import (
    Model,
    available_backends,
    backend_spec,
    get_backend,
    register_backend,
)
from repro.solver.registry import BackendSpec


class TestBuiltins:
    def test_builtin_names_present(self):
        names = available_backends()
        for expected in (
            "scipy", "scipy-lp", "branch-bound", "simplex",
            "revised-simplex", "presolve", "fallback", "decomposition",
        ):
            assert expected in names
        assert list(names) == sorted(names)

    def test_capability_flags(self):
        assert backend_spec("scipy").milp
        assert not backend_spec("scipy-lp").milp
        rs = backend_spec("revised-simplex")
        assert rs.milp and rs.warm_start and rs.sparse and not rs.dispatch
        dec = backend_spec("decomposition")
        assert dec.dispatch and dec.sparse

    def test_builtin_instances_solve(self):
        # Every non-dispatch builtin must solve a tiny MILP/LP correctly.
        m = Model("t")
        x = m.var("x", ub=4.0)
        y = m.var("y", ub=3.0)
        m.add(x + y <= 5.0)
        m.maximize(2.0 * x + y)
        for name in ("scipy", "branch-bound", "simplex", "revised-simplex"):
            res = m.solve(backend=get_backend(name), raise_on_failure=True)
            assert res.objective == pytest.approx(9.0), name


class TestRoundTrip:
    def test_register_and_resolve(self):
        calls = []

        class Dummy:
            def solve(self, sf):
                calls.append(sf)

        register_backend(
            "test-dummy-rt", lambda **kw: Dummy(), milp=True,
            description="test only", replace=True,
        )
        spec = backend_spec("test-dummy-rt")
        assert isinstance(spec, BackendSpec)
        assert spec.milp and not spec.sparse
        assert isinstance(get_backend("test-dummy-rt"), Dummy)
        # Fresh instance per get_backend call.
        assert get_backend("test-dummy-rt") is not get_backend("test-dummy-rt")
        assert "test-dummy-rt" in available_backends()

    def test_factory_kwargs_forwarded(self):
        register_backend(
            "test-dummy-kw", lambda tol=0.5, **kw: ("made", tol),
            replace=True,
        )
        assert get_backend("test-dummy-kw", tol=0.25) == ("made", 0.25)

    def test_duplicate_requires_replace(self):
        register_backend("test-dummy-dup", lambda **kw: None, replace=True)
        with pytest.raises(ValueError, match="already registered"):
            register_backend("test-dummy-dup", lambda **kw: None)
        register_backend("test-dummy-dup", lambda **kw: 42, replace=True)
        assert get_backend("test-dummy-dup") == 42


class TestErrors:
    def test_unknown_backend_lists_names(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            backend_spec("no-such-engine")
        with pytest.raises(ValueError, match="scipy"):
            get_backend("no-such-engine")

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            register_backend("", lambda **kw: None)
        with pytest.raises(ValueError):
            register_backend(None, lambda **kw: None)

    def test_bad_factory_rejected(self):
        with pytest.raises(TypeError):
            register_backend("test-dummy-bad", "not-callable")

    def test_dispatch_backend_rejected_by_model_solve(self):
        from repro.solver import ModelingError

        m = Model("t")
        x = m.var("x", ub=1.0)
        m.maximize(x)
        with pytest.raises(ModelingError, match="dispatch problems"):
            m.solve(backend="decomposition", raise_on_failure=True)

    def test_unknown_name_via_model_solve(self):
        from repro.solver import ModelingError

        m = Model("t")
        x = m.var("x", ub=1.0)
        m.maximize(x)
        with pytest.raises(ModelingError, match="unknown solver backend"):
            m.solve(backend="no-such-engine")
