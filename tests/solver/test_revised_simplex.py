"""The sparse revised simplex must agree with the dense tableau engine."""

import numpy as np
import pytest

from repro.solver import (
    Model,
    RevisedSimplexSolver,
    SimplexSolver,
    SolveStatus,
    lp_solver_for_size,
)
from repro.solver.model import StandardForm
from repro.solver.revised_simplex import RevisedWarmBasis
from repro.telemetry import Telemetry, use_telemetry


def _sf(c, A_ub=None, b_ub=None, A_eq=None, b_eq=None, lb=None, ub=None):
    c = np.asarray(c, dtype=float)
    n = c.size
    A_ub = np.zeros((0, n)) if A_ub is None else np.asarray(A_ub, dtype=float)
    b_ub = np.zeros(0) if b_ub is None else np.asarray(b_ub, dtype=float)
    A_eq = np.zeros((0, n)) if A_eq is None else np.asarray(A_eq, dtype=float)
    b_eq = np.zeros(0) if b_eq is None else np.asarray(b_eq, dtype=float)
    lb = np.zeros(n) if lb is None else np.asarray(lb, dtype=float)
    ub = np.full(n, np.inf) if ub is None else np.asarray(ub, dtype=float)
    return StandardForm(c, A_ub, b_ub, A_eq, b_eq, lb, ub, np.zeros(n, dtype=bool))


def _random_lp(rng, n, m):
    """A bounded random LP (finite box keeps it bounded regardless of c)."""
    return _sf(
        c=rng.normal(size=n),
        A_ub=rng.normal(size=(m, n)),
        b_ub=rng.uniform(1.0, 5.0, size=m),
        ub=rng.uniform(0.5, 4.0, size=n),
    )


class TestAgainstDense:
    def test_textbook_max(self):
        sf = _sf(c=[-3, -5], A_ub=[[1, 0], [0, 2], [3, 2]], b_ub=[4, 12, 18])
        r = RevisedSimplexSolver().solve(sf)
        assert r.ok
        assert r.objective == pytest.approx(-36.0)
        assert r.x == pytest.approx([2.0, 6.0])

    def test_randomized_lps_match(self):
        rng = np.random.default_rng(3)
        dense = SimplexSolver()
        revised = RevisedSimplexSolver()
        for trial in range(25):
            sf = _random_lp(rng, int(rng.integers(3, 20)),
                            int(rng.integers(2, 15)))
            rd = dense.solve(sf)
            rr = revised.solve(sf)
            assert rr.status is rd.status
            if rd.ok:
                assert rr.objective == pytest.approx(
                    rd.objective, rel=1e-7, abs=1e-7
                )

    def test_infeasible_and_unbounded(self):
        r = RevisedSimplexSolver().solve(
            _sf(c=[1], A_eq=[[1]], b_eq=[5], ub=[2])
        )
        assert r.status is SolveStatus.INFEASIBLE
        r = RevisedSimplexSolver().solve(_sf(c=[-1]))
        assert r.status is SolveStatus.UNBOUNDED

    def test_duals_match_dense(self):
        sf = _sf(c=[-3, -5], A_ub=[[1, 0], [0, 2], [3, 2]], b_ub=[4, 12, 18])
        rd = SimplexSolver().solve(sf)
        rr = RevisedSimplexSolver().solve(sf)
        assert rr.duals_ub == pytest.approx(rd.duals_ub, abs=1e-8)


class TestWarmStart:
    def test_warm_basis_reused_across_rhs_changes(self):
        rng = np.random.default_rng(5)
        solver = RevisedSimplexSolver()
        sf = _random_lp(rng, 12, 8)
        tel = Telemetry()
        with use_telemetry(tel):
            res, warm = solver.solve_warm(sf, warm=None)
            assert res.ok and isinstance(warm, RevisedWarmBasis)
            sf2 = StandardForm(
                sf.c, sf.A_ub, sf.b_ub * 1.05, sf.A_eq, sf.b_eq,
                sf.lb, sf.ub, sf.integrality,
            )
            res2, warm2 = solver.solve_warm(sf2, warm=warm)
        assert res2.ok
        cold = SimplexSolver().solve(sf2)
        assert res2.objective == pytest.approx(cold.objective, rel=1e-8)
        reused = tel.registry.counter(
            "solver.revised-simplex.warm.reused"
        ).value
        fallback = tel.registry.counter(
            "solver.revised-simplex.warm.fallback"
        ).value
        assert reused + fallback >= 1

    def test_telemetry_counters_recorded(self):
        rng = np.random.default_rng(9)
        sf = _random_lp(rng, 15, 10)
        tel = Telemetry()
        with use_telemetry(tel):
            # refactor_every=1 refreshes the basis inverse on every
            # pivot, so both counters must fire even on a short solve.
            RevisedSimplexSolver(refactor_every=1).solve(sf)
        reg = tel.registry
        assert reg.counter("solver.revised-simplex.refactorizations").value >= 1
        assert reg.counter("solver.revised-simplex.pricing_passes").value >= 1


class TestSizeSelection:
    def test_small_problems_stay_dense(self):
        assert isinstance(lp_solver_for_size(20, 30), SimplexSolver)
        assert not isinstance(lp_solver_for_size(20, 30), RevisedSimplexSolver)

    def test_large_problems_go_revised(self):
        assert isinstance(lp_solver_for_size(3000, 4000), RevisedSimplexSolver)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_TABLEAU_CELLS", "10")
        assert isinstance(lp_solver_for_size(5, 5), RevisedSimplexSolver)

    def test_in_milp_stack(self):
        # The revised engine must be usable as the B&B's LP oracle.
        m = Model("t")
        x = m.binary("x")
        y = m.var("y", ub=3.0)
        m.add(2.0 * x + y <= 4.0)
        m.maximize(3.0 * x + y)
        from repro.solver import BranchBoundSolver

        res = m.solve(
            backend=BranchBoundSolver(lp_solver=RevisedSimplexSolver()),
            raise_on_failure=True,
        )
        assert res.objective == pytest.approx(5.0)
        assert res.x[0] == pytest.approx(1.0)
