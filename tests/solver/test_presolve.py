"""Tests for presolve reductions (`repro.solver.presolve`)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import (
    Model,
    PresolvingBackend,
    ScipyBackend,
    SolveStatus,
    presolve,
    quicksum,
)


def _sf(m: Model):
    return m.to_standard_form()


class TestReductions:
    def test_fixed_variable_substituted(self):
        m = Model()
        x = m.var("x", lb=3.0, ub=3.0)
        y = m.var("y", lb=0.0, ub=10.0)
        m.add(x + y <= 8.0)
        m.minimize(2 * x + y)
        rep = presolve(_sf(m))
        assert rep.n_fixed == 1
        assert rep.reduced.n_vars == 1
        assert rep.obj_offset == pytest.approx(6.0)
        # The substituted rhs: y <= 5.
        assert rep.reduced.b_ub.size == 0 or rep.reduced.b_ub[0] == pytest.approx(5.0)

    def test_empty_consistent_row_dropped(self):
        m = Model()
        x = m.var("x", lb=2.0, ub=2.0)
        m.add(x <= 5.0)  # becomes 0 <= 3 after substitution
        m.minimize(x)
        rep = presolve(_sf(m))
        assert rep.status is None
        assert rep.reduced.A_ub.shape[0] == 0

    def test_empty_inconsistent_row_infeasible(self):
        m = Model()
        x = m.var("x", lb=2.0, ub=2.0)
        m.add(x <= 1.0)  # 0 <= -1: impossible
        m.minimize(x)
        rep = presolve(_sf(m))
        assert rep.status is SolveStatus.INFEASIBLE

    def test_singleton_row_tightens_bound(self):
        m = Model()
        x = m.var("x", lb=0.0, ub=100.0)
        m.add(2 * x <= 10.0)
        m.minimize(-x)
        rep = presolve(_sf(m))
        assert rep.reduced.A_ub.shape[0] == 0
        assert rep.reduced.ub[0] == pytest.approx(5.0)

    def test_singleton_negative_coef_tightens_lower(self):
        m = Model()
        x = m.var("x", lb=0.0, ub=100.0)
        m.add(-1 * x <= -7.0)  # x >= 7
        m.minimize(x)
        rep = presolve(_sf(m))
        assert rep.reduced.lb[0] == pytest.approx(7.0)

    def test_singleton_equality_fixes_variable(self):
        m = Model()
        x = m.var("x", lb=0.0, ub=100.0)
        y = m.var("y", lb=0.0, ub=1.0)
        m.add(3 * x == 12.0)
        m.add(x + y <= 10.0)
        m.minimize(y)
        rep = presolve(_sf(m))
        assert rep.fixed_values[0] == pytest.approx(4.0)

    def test_redundant_row_dropped(self):
        m = Model()
        x = m.var("x", lb=0.0, ub=1.0)
        y = m.var("y", lb=0.0, ub=1.0)
        m.add(x + y <= 100.0)  # never binding
        m.minimize(x + y)
        rep = presolve(_sf(m))
        assert rep.reduced.A_ub.shape[0] == 0

    def test_integer_bounds_rounded(self):
        m = Model()
        z = m.integer("z", lb=0.4, ub=3.7)
        m.minimize(z)
        rep = presolve(_sf(m))
        assert rep.reduced.lb[0] == pytest.approx(1.0)
        assert rep.reduced.ub[0] == pytest.approx(3.0)

    def test_integer_rounding_detects_infeasibility(self):
        m = Model()
        m.integer("z", lb=2.2, ub=2.8)  # no integer in [2.2, 2.8]
        rep = presolve(_sf(m))
        assert rep.status is SolveStatus.INFEASIBLE

    def test_crossed_bounds_infeasible(self):
        m = Model()
        x = m.var("x", lb=0.0, ub=10.0)
        m.add(x <= 2.0)
        m.add(x >= 5.0)
        m.minimize(x)
        rep = presolve(_sf(m))
        assert rep.status is SolveStatus.INFEASIBLE

    def test_restore_round_trip(self):
        m = Model()
        x = m.var("x", lb=2.0, ub=2.0)
        y = m.var("y", lb=0.0, ub=9.0)
        m.minimize(y)
        rep = presolve(_sf(m))
        full = rep.restore(np.array([4.5]))
        assert full.tolist() == [2.0, 4.5]


class TestPresolvingBackend:
    def test_matches_plain_backend(self):
        m = Model()
        x = m.var("x", lb=1.0, ub=1.0)
        y = m.var("y", lb=0.0, ub=10.0)
        z = m.integer("z", lb=0.0, ub=5.0)
        m.add(x + y + z <= 7.0)
        m.add(2 * y <= 12.0)
        m.minimize(-y - 3 * z)
        plain = m.solve()
        pre = m.solve(backend=PresolvingBackend())
        assert pre.ok
        assert pre.objective == pytest.approx(plain.objective)
        assert pre.x.size == 3
        assert pre.x[0] == pytest.approx(1.0)

    def test_fully_fixed_model(self):
        m = Model()
        m.var("x", lb=2.0, ub=2.0)
        m.var("y", lb=3.0, ub=3.0)
        m.minimize(quicksum(m.variables))
        res = m.solve(backend=PresolvingBackend())
        assert res.ok
        assert res.objective == pytest.approx(5.0)
        assert res.x.tolist() == [2.0, 3.0]

    def test_presolve_infeasibility_short_circuits(self):
        m = Model()
        x = m.var("x", lb=0.0, ub=1.0)
        m.add(x >= 2.0)
        m.minimize(x)
        res = m.solve(backend=PresolvingBackend())
        assert res.status is SolveStatus.INFEASIBLE
        assert "presolve" in res.message

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_models_match(self, seed):
        rng = np.random.default_rng(seed)
        m = Model()
        xs = []
        for i in range(4):
            lo = float(rng.uniform(0, 2))
            hi = lo if rng.random() < 0.3 else lo + float(rng.uniform(0, 3))
            xs.append(m.var(f"x{i}", lb=lo, ub=hi))
        for _ in range(3):
            coefs = rng.normal(size=4)
            rhs = float(coefs @ [v.lb for v in xs] + rng.uniform(0.5, 4.0))
            m.add(quicksum(c * v for c, v in zip(coefs, xs)) <= rhs)
        m.minimize(quicksum(float(c) * v for c, v in zip(rng.normal(size=4), xs)))
        plain = m.solve()
        pre = m.solve(backend=PresolvingBackend())
        assert pre.status == plain.status
        if plain.ok:
            assert pre.objective == pytest.approx(plain.objective, abs=1e-7)

    def test_dispatch_milp_through_presolve(self):
        # The real hourly MILP solved via the presolving backend.
        from repro.core import CostMinimizer
        from repro.experiments import paper_world

        w = paper_world(max_servers=500_000)
        sh = [s.hour(10) for s in w.sites]
        lam = float(w.workload.rates_rps[10])
        plain = CostMinimizer().solve(sh, lam)
        pre = CostMinimizer(backend=PresolvingBackend()).solve(sh, lam)
        assert pre.predicted_cost == pytest.approx(plain.predicted_cost, rel=1e-6)
