"""Property-based tests (hypothesis) for the optimization layer.

Invariants exercised:

* the simplex and HiGHS agree on randomized LPs (status and value);
* branch & bound equals HiGHS MILP on randomized bounded MILPs;
* LP relaxation always lower-bounds the MILP optimum (minimization);
* reported solutions are primal-feasible;
* weak duality holds on LPs with duals.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import Model, SimplexSolver, quicksum
from repro.solver.model import StandardForm
from repro.solver.scipy_backend import ScipyLpBackend

finite = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, width=32)


def _random_lp(draw) -> StandardForm:
    n = draw(st.integers(min_value=1, max_value=5))
    m_rows = draw(st.integers(min_value=0, max_value=4))
    c = np.array([draw(finite) for _ in range(n)], dtype=float)
    A = np.array([[draw(finite) for _ in range(n)] for _ in range(m_rows)], dtype=float)
    A = A.reshape(m_rows, n)
    # Construct a guaranteed-feasible interior point and derive rhs from it,
    # so infeasibility never arises from rounding of generated data.
    x0 = np.array([draw(st.floats(min_value=0.0, max_value=2.0)) for _ in range(n)])
    slackness = np.array(
        [draw(st.floats(min_value=0.1, max_value=2.0)) for _ in range(m_rows)]
    )
    b = (A @ x0 if m_rows else np.zeros(0)) + slackness
    lb = np.zeros(n)
    ub = np.full(n, 4.0)
    return StandardForm(
        c, A, b, np.zeros((0, n)), np.zeros(0), lb, ub, np.zeros(n, dtype=bool)
    )


@st.composite
def lp_problems(draw):
    return _random_lp(draw)


@settings(max_examples=60, deadline=None)
@given(lp_problems())
def test_simplex_matches_highs_on_random_lps(sf):
    r_sx = SimplexSolver().solve(sf)
    r_sp = ScipyLpBackend().solve(sf)
    assert r_sx.status == r_sp.status
    if r_sp.ok:
        assert abs(r_sx.objective - r_sp.objective) <= 1e-6 * (1 + abs(r_sp.objective))
        # Primal feasibility of the simplex point.
        assert np.all(sf.A_ub @ r_sx.x <= sf.b_ub + 1e-7)
        assert np.all(r_sx.x >= sf.lb - 1e-9)
        assert np.all(r_sx.x <= sf.ub + 1e-9)


@st.composite
def milp_models(draw):
    n_int = draw(st.integers(min_value=1, max_value=3))
    n_cont = draw(st.integers(min_value=0, max_value=2))
    m = Model("prop")
    zs = [m.integer(f"z{i}", lb=0, ub=3) for i in range(n_int)]
    xs = [m.var(f"x{i}", lb=0, ub=3) for i in range(n_cont)]
    allv = zs + xs
    n = len(allv)
    rows = draw(st.integers(min_value=1, max_value=3))
    for _ in range(rows):
        a = [draw(finite) for _ in range(n)]
        # rhs chosen so x = 0 is always feasible: rhs >= 0.
        rhs = draw(st.floats(min_value=0.0, max_value=10.0))
        m.add(quicksum(ai * v for ai, v in zip(a, allv)) <= rhs)
    c = [draw(finite) for _ in range(n)]
    m.minimize(quicksum(ci * v for ci, v in zip(c, allv)))
    return m


@settings(max_examples=40, deadline=None)
@given(milp_models())
def test_branch_bound_matches_highs_on_random_milps(m):
    r_bb = m.solve(backend="branch-bound")
    r_sp = m.solve()
    assert r_bb.status == r_sp.status
    assert r_bb.ok  # 0 is always feasible by construction
    assert abs(r_bb.objective - r_sp.objective) <= 1e-6 * (1 + abs(r_sp.objective))


@settings(max_examples=40, deadline=None)
@given(milp_models())
def test_lp_relaxation_bounds_milp(m):
    r_milp = m.solve(backend="branch-bound")
    sf = m.to_standard_form()
    sf.integrality[:] = False
    r_lp = ScipyLpBackend().solve(sf)
    assert r_lp.ok and r_milp.ok
    # Minimization: relaxation optimum <= integer optimum.
    assert r_lp.objective <= r_milp.objective + 1e-7 * (1 + abs(r_milp.objective))


@settings(max_examples=40, deadline=None)
@given(lp_problems())
def test_weak_duality_on_simplex(sf):
    r = SimplexSolver().solve(sf)
    if not r.ok:
        return
    # Strong duality at the optimum: c@x == b@y_ub + bounds terms; we check
    # the cheap direction via the rhs-sensitivity interpretation: all ub-row
    # duals of a minimization must be <= 0 (loosening a <= row cannot hurt).
    assert np.all(r.duals_ub <= 1e-7)
