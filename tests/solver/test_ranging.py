"""Tests for RHS sensitivity ranging in the simplex solver."""

import numpy as np
import pytest

from repro.solver import Model, SimplexSolver


def _solve_ranging(m: Model):
    return SimplexSolver().solve(m.to_standard_form(), ranging=True)


class TestBasicRanging:
    def _model(self, cap=4.0):
        m = Model()
        x = m.var("x", lb=0.0, ub=100.0)
        y = m.var("y", lb=0.0, ub=100.0)
        m.add(x + y == 10.0)
        m.add(x <= cap)
        m.minimize(2 * x + 5 * y)
        return m

    def test_ranges_present_only_when_requested(self):
        m = self._model()
        plain = SimplexSolver().solve(m.to_standard_form())
        assert plain.rhs_range_eq is None
        ranged = _solve_ranging(m)
        assert ranged.rhs_range_eq is not None
        assert ranged.rhs_range_eq.shape == (1, 2)
        assert ranged.rhs_range_ub.shape == (1, 2)

    def test_ranges_bracket_zero(self):
        res = _solve_ranging(self._model())
        for lo, hi in (*res.rhs_range_eq, *res.rhs_range_ub):
            assert lo <= 1e-9
            assert hi >= -1e-9

    def test_dual_prediction_valid_inside_range(self):
        # Inside the range, the objective changes exactly linearly with
        # the dual; just outside it, it does not.
        base = _solve_ranging(self._model(cap=4.0))
        lo, hi = base.rhs_range_ub[0]
        dual = base.duals_ub[0]

        def objective_at(cap):
            return _solve_ranging(self._model(cap=cap)).objective

        inside = 0.5 * hi  # stay strictly inside
        assert objective_at(4.0 + inside) == pytest.approx(
            base.objective + dual * inside, abs=1e-7
        )

    def test_range_endpoint_is_where_basis_changes(self):
        # cap <= 10 binds until cap hits the total demand: hi == 6.
        base = _solve_ranging(self._model(cap=4.0))
        lo, hi = base.rhs_range_ub[0]
        assert hi == pytest.approx(6.0)
        # Below: x >= 0 limits tightening to -4.
        assert lo == pytest.approx(-4.0)

    def test_nonbinding_row_has_infinite_upside(self):
        m = Model()
        x = m.var("x", lb=0.0, ub=1.0)
        m.add(x <= 100.0)  # slack 99+
        m.minimize(-x)
        res = SimplexSolver().solve(m.to_standard_form(), ranging=True)
        lo, hi = res.rhs_range_ub[0]
        assert hi == float("inf")
        # It can tighten by at most its slack before binding: lo = -99.
        assert lo == pytest.approx(-99.0)


class TestOpfRanging:
    def test_lmp_validity_range_matches_bisection(self):
        """The eq-row range of a bus balance = how far that bus's load
        can grow before its LMP regime changes — cross-checked against
        brute-force re-solving."""
        from repro.powermarket import DcOpf, pjm5bus

        grid = pjm5bus()
        opf = DcOpf(grid, backend=SimplexSolver())

        # Build the OPF model manually to get ranging output: reuse the
        # public dispatch for duals, then re-solve with ranging through
        # the same model construction via a probe at increasing loads.
        loads = {b: 150.0 for b in ("B", "C", "D")}
        base = opf.dispatch(loads)
        assert base.feasible
        base_lmp = base.lmp_at("B")

        # Brute force: grow only bus B's load until the LMP changes.
        step = 2.0
        grow = 0.0
        while grow < 400.0:
            grow += step
            probe = dict(loads)
            probe["B"] = loads["B"] + grow
            res = opf.dispatch(probe)
            if not res.feasible or abs(res.lmp_at("B") - base_lmp) > 1e-6:
                break
        brute_change = grow

        # The LMP at 150/150/150 is Brighton's $10 and stays there until
        # Brighton saturates: growing B alone by ~150 MW (600 - 450).
        assert brute_change == pytest.approx(150.0, abs=2 * step)

        # Single-solve ranging gives a *sufficient* headroom: within it
        # the LMP is provably unchanged (it may be conservative when a
        # degenerate basis change precedes the price change).
        headroom = opf.load_growth_headroom(loads, "B")
        assert 0.0 < headroom <= brute_change + step
        probe = dict(loads)
        probe["B"] = loads["B"] + 0.99 * headroom
        inside = opf.dispatch(probe)
        assert inside.lmp_at("B") == pytest.approx(base_lmp, abs=1e-6)

    def test_headroom_validation(self):
        from repro.powermarket import DcOpf, pjm5bus

        opf = DcOpf(pjm5bus())
        with pytest.raises(KeyError):
            opf.load_growth_headroom({"B": 10.0}, "Z")
        with pytest.raises(ValueError, match="infeasible"):
            opf.load_growth_headroom({"B": 10_000.0}, "B")
