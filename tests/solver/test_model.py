"""Unit tests for the algebraic modeling layer (`repro.solver.model`)."""

import numpy as np
import pytest

from repro.solver import (
    LinExpr,
    Model,
    ModelingError,
    Sense,
    VarType,
    quicksum,
)


class TestLinExpr:
    def test_add_variables(self):
        m = Model()
        x, y = m.var("x"), m.var("y")
        e = x + y
        assert e.coeffs == {0: 1.0, 1: 1.0}
        assert e.constant == 0.0

    def test_scalar_multiplication(self):
        m = Model()
        x = m.var("x")
        e = 3 * x
        assert e.coeffs == {0: 3.0}
        e2 = x * 0.5
        assert e2.coeffs == {0: 0.5}

    def test_negation_and_subtraction(self):
        m = Model()
        x, y = m.var("x"), m.var("y")
        e = -(x - 2 * y) + 1
        assert e.coeffs == {0: -1.0, 1: 2.0}
        assert e.constant == 1.0

    def test_rsub_constant(self):
        m = Model()
        x = m.var("x")
        e = 10 - x
        assert e.coeffs == {0: -1.0}
        assert e.constant == 10.0

    def test_division(self):
        m = Model()
        x = m.var("x")
        e = (4 * x) / 2
        assert e.coeffs == {0: 2.0}

    def test_coefficients_merge(self):
        m = Model()
        x = m.var("x")
        e = x + x + 2 * x
        assert e.coeffs == {0: 4.0}

    def test_product_of_variables_rejected(self):
        m = Model()
        x, y = m.var("x"), m.var("y")
        with pytest.raises(ModelingError):
            _ = x * y
        with pytest.raises(ModelingError):
            _ = (x + 1) * (y + 1)

    def test_mixing_models_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x, y = m1.var("x"), m2.var("y")
        with pytest.raises(ModelingError):
            _ = x + y

    def test_evaluate(self):
        m = Model()
        x, y = m.var("x"), m.var("y")
        e = 2 * x - y + 3
        assert e.evaluate([1.0, 4.0]) == pytest.approx(1.0)

    def test_quicksum_matches_sum(self):
        m = Model()
        xs = m.vars_array(10, "x")
        e1 = quicksum(2.0 * x for x in xs)
        e2 = sum((2.0 * x for x in xs), LinExpr())
        assert e1.coeffs == e2.coeffs

    def test_quicksum_empty(self):
        e = quicksum([])
        assert e.coeffs == {}
        assert e.constant == 0.0

    def test_quicksum_with_constants(self):
        m = Model()
        x = m.var("x")
        e = quicksum([x, 5.0, 2 * x])
        assert e.coeffs == {0: 3.0}
        assert e.constant == 5.0


class TestConstraints:
    def test_le_canonical(self):
        m = Model()
        x = m.var("x")
        c = m.add(2 * x + 1 <= 5)
        assert c.kind == "<="
        assert c.rhs == pytest.approx(4.0)
        assert c.expr.coeffs == {0: 2.0}

    def test_ge_flipped_to_le(self):
        m = Model()
        x = m.var("x")
        c = m.add(x >= 3)
        assert c.kind == "<="
        assert c.expr.coeffs == {0: -1.0}
        assert c.rhs == pytest.approx(-3.0)

    def test_eq_kept(self):
        m = Model()
        x, y = m.var("x"), m.var("y")
        c = m.add(x + y == 7)
        assert c.kind == "=="
        assert c.rhs == pytest.approx(7.0)

    def test_constraint_between_expressions(self):
        m = Model()
        x, y = m.var("x"), m.var("y")
        c = m.add(x + 2 <= y + 5)
        assert c.expr.coeffs == {0: 1.0, 1: -1.0}
        assert c.rhs == pytest.approx(3.0)

    def test_violation(self):
        m = Model()
        x = m.var("x")
        c = m.add(x <= 4)
        assert c.violation([5.0]) == pytest.approx(1.0)
        assert c.violation([3.0]) == 0.0

    def test_add_non_constraint_rejected(self):
        m = Model()
        m.var("x")
        with pytest.raises(ModelingError):
            m.add(42)  # type: ignore[arg-type]

    def test_foreign_constraint_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.var("x")
        with pytest.raises(ModelingError):
            m2.add(x <= 1)


class TestVariables:
    def test_bounds_validation(self):
        m = Model()
        with pytest.raises(ModelingError):
            m.var("bad", lb=2.0, ub=1.0)

    def test_binary_clamps_bounds(self):
        m = Model()
        b = m.binary("b")
        assert b.lb == 0.0 and b.ub == 1.0
        assert b.vtype is VarType.BINARY

    def test_vars_array_names(self):
        m = Model()
        xs = m.vars_array(3, "lam")
        assert [v.name for v in xs] == ["lam[0]", "lam[1]", "lam[2]"]

    def test_counts(self):
        m = Model()
        m.var("x")
        m.integer("n")
        m.binary("b")
        m.add(m.variables[0] <= 1)
        assert m.num_vars == 3
        assert m.num_integer_vars == 2
        assert m.num_constraints == 1


class TestStandardForm:
    def test_compile_shapes(self):
        m = Model()
        x, y = m.var("x", ub=4), m.integer("n", ub=9)
        m.add(x + y <= 5)
        m.add(x - y >= -2)
        m.add(x + 2 * y == 6)
        m.minimize(x + y)
        sf = m.to_standard_form()
        assert sf.A_ub.shape == (2, 2)
        assert sf.A_eq.shape == (1, 2)
        assert sf.integrality.tolist() == [False, True]
        assert sf.has_integers

    def test_max_negates_costs(self):
        m = Model()
        x = m.var("x", ub=1)
        m.maximize(5 * x)
        sf = m.to_standard_form()
        assert sf.c[0] == pytest.approx(-5.0)
        assert m.sense is Sense.MAX

    def test_objective_constant_round_trip(self):
        m = Model()
        x = m.var("x", lb=0, ub=2)
        m.minimize(x + 10)
        r = m.solve()
        assert r.objective == pytest.approx(10.0)

    def test_objective_constant_max(self):
        m = Model()
        x = m.var("x", lb=0, ub=2)
        m.maximize(x + 10)
        r = m.solve()
        assert r.objective == pytest.approx(12.0)

    def test_foreign_objective_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.var("x")
        with pytest.raises(ModelingError):
            m2.minimize(x)


class TestSolveInterface:
    def test_result_value_of_variable_and_expr(self):
        m = Model()
        x = m.var("x", lb=0, ub=4)
        y = m.var("y", lb=0, ub=3)
        m.add(x + y <= 5)
        m.maximize(2 * x + 3 * y)
        r = m.solve()
        assert r.ok
        assert r.value(x) == pytest.approx(2.0)
        assert r.value(x + 2 * y + 1) == pytest.approx(9.0)

    def test_value_raises_without_solution(self):
        m = Model()
        x = m.var("x", lb=0, ub=1)
        m.add(x >= 2)  # infeasible
        m.minimize(x)
        r = m.solve()
        assert not r.ok
        with pytest.raises(ValueError):
            r.value(x)

    def test_raise_on_failure(self):
        from repro.solver import InfeasibleError

        m = Model()
        x = m.var("x", lb=0, ub=1)
        m.add(x >= 2)
        m.minimize(x)
        with pytest.raises(InfeasibleError):
            m.solve(raise_on_failure=True)

    def test_unknown_backend_rejected(self):
        m = Model()
        m.var("x", ub=1)
        with pytest.raises(ModelingError):
            m.solve(backend="no-such-backend")

    def test_custom_backend_object(self):
        from repro.solver import ScipyLpBackend

        m = Model()
        x = m.var("x", lb=0, ub=4)
        m.minimize(-x)
        r = m.solve(backend=ScipyLpBackend())
        assert r.objective == pytest.approx(-4.0)

    def test_unconstrained_default_objective_zero(self):
        m = Model()
        m.var("x", lb=0, ub=1)
        r = m.solve()  # zero objective: any feasible point
        assert r.ok
        assert r.objective == pytest.approx(0.0)

    def test_free_variable_lp(self):
        m = Model()
        x = m.var("x", lb=-np.inf, ub=np.inf)
        m.add(x >= -7)
        m.minimize(x)
        for backend in (None, "simplex"):
            r = m.solve(backend=backend)
            assert r.objective == pytest.approx(-7.0), backend
