"""Unit tests for the pure-NumPy two-phase simplex (`repro.solver.simplex`)."""

import numpy as np
import pytest

from repro.solver import Model, SimplexSolver, SolveStatus
from repro.solver.model import StandardForm


def _sf(c, A_ub=None, b_ub=None, A_eq=None, b_eq=None, lb=None, ub=None):
    c = np.asarray(c, dtype=float)
    n = c.size
    A_ub = np.zeros((0, n)) if A_ub is None else np.asarray(A_ub, dtype=float)
    b_ub = np.zeros(0) if b_ub is None else np.asarray(b_ub, dtype=float)
    A_eq = np.zeros((0, n)) if A_eq is None else np.asarray(A_eq, dtype=float)
    b_eq = np.zeros(0) if b_eq is None else np.asarray(b_eq, dtype=float)
    lb = np.zeros(n) if lb is None else np.asarray(lb, dtype=float)
    ub = np.full(n, np.inf) if ub is None else np.asarray(ub, dtype=float)
    return StandardForm(c, A_ub, b_ub, A_eq, b_eq, lb, ub, np.zeros(n, dtype=bool))


class TestBasicLPs:
    def test_textbook_max(self):
        # max 3x + 5y st x<=4, 2y<=12, 3x+2y<=18 (Dantzig's example); opt 36.
        sf = _sf(
            c=[-3, -5],
            A_ub=[[1, 0], [0, 2], [3, 2]],
            b_ub=[4, 12, 18],
        )
        r = SimplexSolver().solve(sf)
        assert r.ok
        assert r.objective == pytest.approx(-36.0)
        assert r.x == pytest.approx([2.0, 6.0])

    def test_equality_only(self):
        sf = _sf(c=[1, 2], A_eq=[[1, 1]], b_eq=[4])
        r = SimplexSolver().solve(sf)
        assert r.objective == pytest.approx(4.0)
        assert r.x == pytest.approx([4.0, 0.0])

    def test_negative_rhs_rows(self):
        # x - y <= -2 with min x -> x=0, y>=2 must hold via flipped row.
        sf = _sf(c=[1, 0], A_ub=[[1, -1]], b_ub=[-2], ub=[10, 10])
        r = SimplexSolver().solve(sf)
        assert r.ok
        assert r.objective == pytest.approx(0.0)
        assert r.x[1] - r.x[0] >= 2 - 1e-8

    def test_infeasible(self):
        sf = _sf(c=[1], A_eq=[[1]], b_eq=[5], ub=[2])
        r = SimplexSolver().solve(sf)
        assert r.status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        sf = _sf(c=[-1])  # min -x, x >= 0 unbounded
        r = SimplexSolver().solve(sf)
        assert r.status is SolveStatus.UNBOUNDED

    def test_degenerate_problem_terminates(self):
        # Klee-Minty-flavoured degenerate cube, small size.
        n = 4
        A = np.zeros((n, n))
        b = np.zeros(n)
        for i in range(n):
            A[i, i] = 1.0
            for j in range(i):
                A[i, j] = 2.0 ** (i - j + 1)
            b[i] = 5.0 ** (i + 1)
        sf = _sf(c=-(2.0 ** np.arange(n - 1, -1, -1)), A_ub=A, b_ub=b)
        r = SimplexSolver().solve(sf)
        assert r.ok
        assert r.objective == pytest.approx(-(5.0 ** n))


class TestBounds:
    def test_lower_bound_shift(self):
        sf = _sf(c=[1.0], lb=[3.0])
        r = SimplexSolver().solve(sf)
        assert r.objective == pytest.approx(3.0)

    def test_upper_bound_binding(self):
        sf = _sf(c=[-1.0], ub=[7.5])
        r = SimplexSolver().solve(sf)
        assert r.objective == pytest.approx(-7.5)

    def test_free_variable_negative_optimum(self):
        sf = _sf(c=[1.0], A_ub=[[-1.0]], b_ub=[4.0], lb=[-np.inf])
        r = SimplexSolver().solve(sf)
        assert r.objective == pytest.approx(-4.0)

    def test_free_variable_with_upper_bound(self):
        sf = _sf(c=[-1.0], lb=[-np.inf], ub=[2.0])
        r = SimplexSolver().solve(sf)
        assert r.objective == pytest.approx(-2.0)

    def test_negative_lower_bound(self):
        sf = _sf(c=[1.0], lb=[-5.0], ub=[5.0])
        r = SimplexSolver().solve(sf)
        assert r.objective == pytest.approx(-5.0)

    def test_fixed_variable(self):
        sf = _sf(c=[1.0, 1.0], lb=[2.0, 0.0], ub=[2.0, 1.0], A_ub=[[1, 1]], b_ub=[3])
        r = SimplexSolver().solve(sf)
        assert r.ok
        assert r.x[0] == pytest.approx(2.0)


class TestDuals:
    def test_duals_match_scipy_on_model(self):
        m = Model()
        x = m.var("x", lb=0)
        y = m.var("y", lb=0)
        m.add(x + y == 10)
        m.add(x <= 4)
        m.minimize(2 * x + 5 * y)
        r_sp = m.solve()
        r_sx = m.solve(backend="simplex")
        assert r_sx.objective == pytest.approx(r_sp.objective)
        assert r_sx.duals_eq == pytest.approx(r_sp.duals_eq)
        assert r_sx.duals_ub == pytest.approx(r_sp.duals_ub)

    def test_dual_is_rhs_sensitivity(self):
        # Perturb the equality rhs and confirm the dual predicts the change.
        def solve(rhs):
            m = Model()
            x = m.var("x", lb=0, ub=6)
            y = m.var("y", lb=0, ub=20)
            m.add(x + y == rhs)
            m.minimize(1 * x + 3 * y)
            return m.solve(backend="simplex")

        base = solve(10.0)
        bumped = solve(10.5)
        predicted = base.objective + 0.5 * base.duals_eq[0]
        assert bumped.objective == pytest.approx(predicted)

    def test_nonbinding_constraint_zero_dual(self):
        m = Model()
        x = m.var("x", lb=0, ub=1)
        m.add(x <= 100)  # never binding
        m.minimize(x)
        r = m.solve(backend="simplex")
        assert r.duals_ub[0] == pytest.approx(0.0)


class TestRandomizedAgainstScipy:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_feasible_lps(self, seed):
        rng = np.random.default_rng(seed)
        n, m_rows = 6, 4
        A = rng.normal(size=(m_rows, n))
        x_feas = rng.uniform(0.5, 2.0, size=n)
        b = A @ x_feas + rng.uniform(0.1, 1.0, size=m_rows)
        c = rng.normal(size=n)
        ub = np.full(n, 10.0)
        sf = _sf(c=c, A_ub=A, b_ub=b, ub=ub)

        from repro.solver import ScipyLpBackend

        r_sx = SimplexSolver().solve(sf)
        r_sp = ScipyLpBackend().solve(sf)
        assert r_sx.status == r_sp.status
        if r_sp.ok:
            assert r_sx.objective == pytest.approx(r_sp.objective, abs=1e-6)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_lps_with_equalities(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = 5
        A_eq = rng.normal(size=(2, n))
        x_feas = rng.uniform(0.0, 3.0, size=n)
        b_eq = A_eq @ x_feas
        c = rng.normal(size=n)
        sf = _sf(c=c, A_eq=A_eq, b_eq=b_eq, ub=np.full(n, 5.0))

        from repro.solver import ScipyLpBackend

        r_sx = SimplexSolver().solve(sf)
        r_sp = ScipyLpBackend().solve(sf)
        assert r_sx.status == r_sp.status
        if r_sp.ok:
            assert r_sx.objective == pytest.approx(r_sp.objective, abs=1e-6)
