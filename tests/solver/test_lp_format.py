"""Tests for the LP-format writer/reader (`repro.solver.lp_format`)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import (
    Model,
    ModelingError,
    model_to_lp_string,
    parse_lp_string,
    quicksum,
    read_lp,
    write_lp,
)


def _toy_model():
    m = Model("toy")
    x = m.var("x", lb=0.0, ub=4.0)
    y = m.var("y", lb=-2.0, ub=3.0)
    z = m.integer("z", lb=0.0, ub=10.0)
    b = m.binary("b")
    m.add(x + 2 * y - z <= 5.0, name="row1")
    m.add(x - y >= -1.0, name="row2")
    m.add(x + z + b == 6.0, name="row3")
    m.maximize(3 * x + y + 2 * z + b)
    return m


class TestWriter:
    def test_contains_sections(self):
        text = model_to_lp_string(_toy_model())
        for keyword in ("Maximize", "Subject To", "Bounds", "General", "Binary", "End"):
            assert keyword in text

    def test_write_lp_creates_file(self, tmp_path):
        path = write_lp(_toy_model(), tmp_path / "toy.lp")
        assert path.exists()
        assert "Subject To" in path.read_text()

    def test_free_variable_bound(self):
        m = Model()
        m.var("f", lb=-np.inf, ub=np.inf)
        m.minimize(0.0 * m.variables[0])
        assert "free" in model_to_lp_string(m)

    def test_weird_names_sanitized(self):
        m = Model()
        v = m.var("lam[DC1,0]", lb=0, ub=1)
        m.minimize(v)
        text = model_to_lp_string(m)
        assert "[" not in text.split("Subject To")[0].split("obj:")[1]


class TestReader:
    def test_round_trip_solves_identically(self, tmp_path):
        m = _toy_model()
        m2 = read_lp(write_lp(m, tmp_path / "t.lp"))
        r1, r2 = m.solve(), m2.solve()
        assert r1.status == r2.status
        assert r2.objective == pytest.approx(r1.objective)

    def test_round_trip_standard_form(self):
        m = _toy_model()
        m2 = parse_lp_string(model_to_lp_string(m))
        sf1, sf2 = m.to_standard_form(), m2.to_standard_form()
        assert np.allclose(sf1.c, sf2.c)
        assert np.allclose(np.sort(sf1.b_ub), np.sort(sf2.b_ub))
        assert np.allclose(sf1.lb, sf2.lb)
        assert np.allclose(sf1.ub, sf2.ub)
        assert np.array_equal(sf1.integrality, sf2.integrality)

    def test_parse_minimal(self):
        m = parse_lp_string(
            """
            Minimize
             obj: x + 2 y
            Subject To
             c1: x + y >= 1
            Bounds
             x <= 10
            End
            """
        )
        res = m.solve()
        assert res.objective == pytest.approx(1.0)

    def test_parse_comments_and_infinity(self):
        m = parse_lp_string(
            """
            \\ a comment line
            Minimize
             obj: x
            Subject To
             c: x >= 2 \\ trailing comment
            Bounds
             -inf <= x <= +inf
            End
            """
        )
        assert m.solve().objective == pytest.approx(2.0)

    def test_parse_binary_and_general(self):
        m = parse_lp_string(
            """
            Maximize
             obj: 2 z + b
            Subject To
             c: z + b <= 4
            Bounds
             z <= 9
            General
             z
            Binary
             b
            End
            """
        )
        res = m.solve()
        assert res.objective == pytest.approx(2 * 4 + 0)  # z=4, b=0 optimal... z+b<=4

    def test_unparseable_bound_raises(self):
        with pytest.raises(ModelingError):
            parse_lp_string(
                "Minimize\n obj: x\nSubject To\n c: x >= 0\nBounds\n ??? \nEnd\n"
            )

    def test_constraint_without_comparison_raises(self):
        with pytest.raises(ModelingError):
            parse_lp_string("Minimize\n obj: x\nSubject To\n c: x + 1\nEnd\n")


@st.composite
def random_models(draw):
    m = Model("rand")
    n = draw(st.integers(min_value=1, max_value=5))
    kinds = draw(
        st.lists(st.sampled_from(["cont", "int", "bin"]), min_size=n, max_size=n)
    )
    xs = []
    for i, kind in enumerate(kinds):
        if kind == "cont":
            lo = draw(st.floats(min_value=-5, max_value=2))
            hi = lo + draw(st.floats(min_value=0, max_value=6))
            xs.append(m.var(f"v{i}", lb=lo, ub=hi))
        elif kind == "int":
            xs.append(m.integer(f"v{i}", lb=0, ub=draw(st.integers(1, 8))))
        else:
            xs.append(m.binary(f"v{i}"))
    rows = draw(st.integers(min_value=0, max_value=4))
    for r in range(rows):
        coefs = [draw(st.floats(min_value=-3, max_value=3)) for _ in xs]
        rhs = draw(st.floats(min_value=-5, max_value=20))
        op = draw(st.sampled_from(["<=", ">=", "=="]))
        lhs = quicksum(c * v for c, v in zip(coefs, xs))
        if op == "<=":
            m.add(lhs <= rhs)
        elif op == ">=":
            m.add(lhs >= rhs)
        else:
            # Equalities on random data are usually infeasible; keep
            # them trivially satisfiable instead.
            m.add(lhs <= rhs)
    obj = quicksum(
        draw(st.floats(min_value=-3, max_value=3)) * v for v in xs
    )
    if draw(st.booleans()):
        m.minimize(obj)
    else:
        m.maximize(obj)
    return m


@settings(max_examples=40, deadline=None)
@given(random_models())
def test_lp_round_trip_property(m):
    m2 = parse_lp_string(model_to_lp_string(m))
    r1 = m.solve()
    r2 = m2.solve()
    assert r1.status == r2.status
    if r1.ok:
        assert r2.objective == pytest.approx(r1.objective, abs=1e-6)
