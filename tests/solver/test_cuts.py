"""Tests for cover-cut separation and cut-enabled branch & bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import BranchBoundSolver, Model, quicksum
from repro.solver.cuts import CoverCut, apply_cuts, find_cover_cuts
from repro.solver.scipy_backend import ScipyLpBackend


def knapsack_model(values, weights, capacity):
    m = Model("knapsack")
    xs = [m.binary(f"x{i}") for i in range(len(values))]
    m.add(quicksum(w * x for w, x in zip(weights, xs)) <= capacity)
    m.maximize(quicksum(v * x for v, x in zip(values, xs)))
    return m


class TestCoverCut:
    def test_structure(self):
        cut = CoverCut((3, 1, 2))
        assert cut.cover == (1, 2, 3)
        assert cut.rhs == 2

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            CoverCut((1,))

    def test_violation(self):
        cut = CoverCut((0, 1))
        assert cut.violation(np.array([0.9, 0.9])) == pytest.approx(0.8)
        assert cut.violation(np.array([1.0, 0.0])) == pytest.approx(0.0)
        assert cut.violation(np.array([0.0, 0.0])) == pytest.approx(-1.0)

    def test_dedup_via_hash(self):
        assert CoverCut((0, 1)) == CoverCut((1, 0))
        assert len({CoverCut((0, 1)), CoverCut((1, 0))}) == 1


class TestSeparation:
    def test_finds_violated_cover(self):
        # Two items of weight 6 into capacity 10: LP picks x = (5/6, 1)
        # or similar fractional point; {0, 1} is a violated cover.
        m = knapsack_model([10.0, 9.0], [6.0, 6.0], 10.0)
        sf = m.to_standard_form()
        relax = ScipyLpBackend().solve(sf)
        cuts = find_cover_cuts(sf, relax.x)
        assert CoverCut((0, 1)) in cuts

    def test_no_cut_when_integral(self):
        m = knapsack_model([10.0, 9.0], [6.0, 6.0], 10.0)
        sf = m.to_standard_form()
        cuts = find_cover_cuts(sf, np.array([1.0, 0.0]))
        assert cuts == []

    def test_rows_without_knapsack_structure_skipped(self):
        m = Model()
        x = m.var("x", lb=0.0, ub=10.0)  # continuous: not a knapsack
        b = m.binary("b")
        m.add(x + b <= 5.0)
        m.minimize(-x - b)
        sf = m.to_standard_form()
        assert find_cover_cuts(sf, np.array([4.5, 0.5])) == []

    def test_apply_cuts_appends_rows(self):
        m = knapsack_model([1.0, 1.0], [6.0, 6.0], 10.0)
        sf = m.to_standard_form()
        out = apply_cuts(sf, [CoverCut((0, 1))])
        assert out.A_ub.shape[0] == sf.A_ub.shape[0] + 1
        assert out.b_ub[-1] == 1.0
        assert apply_cuts(sf, []) is sf


class TestCutEnabledBranchBound:
    def _hard_knapsack(self, n=16, seed=3):
        rng = np.random.default_rng(seed)
        weights = rng.integers(8, 40, size=n).astype(float)
        values = weights + rng.uniform(0.0, 4.0, size=n)  # correlated: hard
        capacity = float(weights.sum()) / 2
        return values.tolist(), weights.tolist(), capacity

    def test_same_optimum_with_and_without_cuts(self):
        values, weights, capacity = self._hard_knapsack()
        m = knapsack_model(values, weights, capacity)
        sf = m.to_standard_form()
        plain = BranchBoundSolver().solve(sf)
        cut = BranchBoundSolver(cover_cuts=True).solve(sf)
        assert plain.ok and cut.ok
        assert cut.objective == pytest.approx(plain.objective, rel=1e-9)

    def test_cuts_reduce_nodes_on_hard_knapsacks(self):
        total_plain = total_cut = 0
        for seed in (3, 5, 11, 17):
            values, weights, capacity = self._hard_knapsack(seed=seed)
            m = knapsack_model(values, weights, capacity)
            sf = m.to_standard_form()
            total_plain += BranchBoundSolver().solve(sf).iterations
            total_cut += BranchBoundSolver(cover_cuts=True).solve(sf).iterations
        assert total_cut < total_plain

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_cut_solver_matches_highs_property(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 10))
        weights = rng.integers(2, 20, size=n).astype(float)
        values = rng.uniform(1.0, 30.0, size=n)
        capacity = float(weights.sum()) * float(rng.uniform(0.3, 0.8))
        m = knapsack_model(values.tolist(), weights.tolist(), capacity)
        cut = m.solve(backend=BranchBoundSolver(cover_cuts=True))
        highs = m.solve()
        assert cut.objective == pytest.approx(highs.objective, rel=1e-9)
        # The cut solution itself is feasible for the original knapsack.
        assert float(weights @ np.round(cut.x)) <= capacity + 1e-9