"""Unit tests for the branch & bound MILP solver (`repro.solver.branch_bound`)."""

import numpy as np
import pytest

from repro.solver import (
    BranchBoundSolver,
    Model,
    SimplexSolver,
    SolveStatus,
    quicksum,
)


def _knapsack_model(values, weights, capacity):
    m = Model("knapsack")
    xs = [m.binary(f"x{i}") for i in range(len(values))]
    m.add(quicksum(w * x for w, x in zip(weights, xs)) <= capacity)
    m.maximize(quicksum(v * x for v, x in zip(values, xs)))
    return m, xs


class TestBranchBound:
    def test_knapsack_optimum(self):
        values = [10, 13, 18, 31, 7, 15]
        weights = [2, 3, 4, 5, 1, 3]
        m, xs = _knapsack_model(values, weights, 10)
        r = m.solve(backend="branch-bound")
        assert r.ok
        # Brute-force verification.
        best = 0
        n = len(values)
        for mask in range(1 << n):
            w = sum(weights[i] for i in range(n) if mask >> i & 1)
            if w <= 10:
                best = max(best, sum(values[i] for i in range(n) if mask >> i & 1))
        assert r.objective == pytest.approx(best)

    def test_integrality_enforced(self):
        m = Model()
        z = m.integer("z", lb=0, ub=10)
        m.add(2 * z <= 7)
        m.maximize(z)
        r = m.solve(backend="branch-bound")
        assert r.objective == pytest.approx(3.0)
        assert r.x[0] == pytest.approx(3.0)

    def test_pure_lp_passthrough(self):
        m = Model()
        x = m.var("x", lb=0, ub=2)
        m.maximize(x)
        r = m.solve(backend="branch-bound")
        assert r.ok
        assert r.objective == pytest.approx(2.0)

    def test_infeasible_milp(self):
        m = Model()
        z = m.integer("z", lb=0, ub=5)
        m.add(z >= 2)
        m.add(z <= 1)
        m.minimize(z)
        r = m.solve(backend="branch-bound")
        assert r.status is SolveStatus.INFEASIBLE

    def test_unbounded_milp(self):
        m = Model()
        z = m.integer("z", lb=0)
        m.maximize(z)
        r = m.solve(backend="branch-bound")
        assert r.status is SolveStatus.UNBOUNDED

    def test_fractional_gap_requires_branching(self):
        # LP relaxation is fractional; optimum requires exploring both branches.
        m = Model()
        x = m.integer("x", lb=0, ub=10)
        y = m.integer("y", lb=0, ub=10)
        m.add(-3 * x + 4 * y <= 4)
        m.add(3 * x + 2 * y <= 11)
        m.maximize(y)
        r = m.solve(backend="branch-bound")
        assert r.ok
        assert float(r.objective).is_integer()
        assert r.objective == pytest.approx(2.0)

    def test_node_limit(self):
        rng = np.random.default_rng(0)
        n = 14
        values = rng.integers(10, 50, size=n)
        weights = rng.integers(5, 25, size=n)
        m, _ = _knapsack_model(values.tolist(), weights.tolist(), int(weights.sum() // 2))
        solver = BranchBoundSolver(max_nodes=2)
        sf = m.to_standard_form()
        r = solver.solve(sf)
        assert r.status in (SolveStatus.NODE_LIMIT, SolveStatus.OPTIMAL)

    def test_with_pure_simplex_engine(self):
        m, _ = _knapsack_model([10, 13, 18], [2, 3, 4], 6)
        r_own = m.solve(backend="simplex")  # B&B over our simplex
        r_sp = m.solve()  # HiGHS MILP
        assert r_own.ok
        assert r_own.objective == pytest.approx(r_sp.objective)

    def test_equality_constrained_milp(self):
        m = Model()
        x = m.integer("x", lb=0, ub=20)
        y = m.integer("y", lb=0, ub=20)
        m.add(x + y == 13)
        m.minimize(3 * x + 5 * y)
        r = m.solve(backend="branch-bound")
        assert r.objective == pytest.approx(3 * 13)

    def test_solution_rounded_exactly_integral(self):
        m = Model()
        z = m.integer("z", lb=0, ub=9)
        m.add(3 * z <= 8.5)
        m.maximize(z)
        r = m.solve(backend="branch-bound")
        assert r.x[0] == 2.0  # exactly, not 1.9999999

    def test_near_integral_relaxation_rounds_like_milp_solvers(self):
        # A relaxation optimum within int_tol of an integer is accepted as
        # integral (standard MIP integrality-tolerance semantics).
        m = Model()
        z = m.integer("z", lb=0, ub=9)
        m.add(3 * z <= 9.0 - 1e-9)
        m.maximize(z)
        r = m.solve(backend="branch-bound")
        assert r.x[0] == 3.0


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_small_milps_match_scipy(self, seed):
        rng = np.random.default_rng(seed)
        n_cont, n_int = 3, 3
        m = Model(f"rand{seed}")
        xs = [m.var(f"x{i}", lb=0, ub=5) for i in range(n_cont)]
        zs = [m.integer(f"z{i}", lb=0, ub=4) for i in range(n_int)]
        allv = xs + zs
        feas = rng.uniform(0, 2, size=n_cont + n_int)
        for _ in range(4):
            a = rng.normal(size=n_cont + n_int)
            rhs = float(a @ feas + rng.uniform(0.5, 2.0))
            m.add(quicksum(ai * v for ai, v in zip(a, allv)) <= rhs)
        c = rng.normal(size=n_cont + n_int)
        m.minimize(quicksum(ci * v for ci, v in zip(c, allv)))

        r_bb = m.solve(backend="branch-bound")
        r_sp = m.solve()
        assert r_bb.status == r_sp.status
        if r_sp.ok:
            assert r_bb.objective == pytest.approx(r_sp.objective, abs=1e-6)
            # The B&B solution must itself be feasible and integral.
            for con in m.constraints:
                assert con.violation(r_bb.x) <= 1e-6
            for z in zs:
                assert abs(r_bb.x[z.index] - round(r_bb.x[z.index])) < 1e-9
