"""Warm-start equivalence and dual/ranging edge cases for the simplex.

The warm-start contract (`SimplexSolver.solve_warm`) is that results are
*identical* to a cold solve — the basis token only changes how the
optimum is reached. The randomized suites here drive the exact reuse
patterns the branch-and-bound and the hourly model cache rely on:
right-hand-side drift between hours, bounds-only changes between tree
nodes, and stale/foreign tokens that must fall back to a cold solve.
"""

import numpy as np
import pytest

from repro.solver import ScipyLpBackend, SimplexSolver, SolveStatus
from repro.solver.model import StandardForm


def _sf(c, A_ub=None, b_ub=None, A_eq=None, b_eq=None, lb=None, ub=None):
    c = np.asarray(c, dtype=float)
    n = c.size
    A_ub = np.zeros((0, n)) if A_ub is None else np.asarray(A_ub, dtype=float)
    b_ub = np.zeros(0) if b_ub is None else np.asarray(b_ub, dtype=float)
    A_eq = np.zeros((0, n)) if A_eq is None else np.asarray(A_eq, dtype=float)
    b_eq = np.zeros(0) if b_eq is None else np.asarray(b_eq, dtype=float)
    lb = np.zeros(n) if lb is None else np.asarray(lb, dtype=float)
    ub = np.full(n, np.inf) if ub is None else np.asarray(ub, dtype=float)
    return StandardForm(c, A_ub, b_ub, A_eq, b_eq, lb, ub, np.zeros(n, dtype=bool))


def _random_feasible(rng, n=6, m_rows=4):
    A = rng.normal(size=(m_rows, n))
    x_feas = rng.uniform(0.5, 2.0, size=n)
    b = A @ x_feas + rng.uniform(0.1, 1.0, size=m_rows)
    c = rng.normal(size=n)
    return _sf(c=c, A_ub=A, b_ub=b, ub=np.full(n, 10.0))


class TestWarmEqualsCold:
    @pytest.mark.parametrize("seed", range(10))
    def test_rhs_drift(self, seed):
        """Hour-to-hour pattern: same structure, drifting right-hand side."""
        rng = np.random.default_rng(seed)
        sf = _random_feasible(rng)
        solver = SimplexSolver()
        _, warm = solver.solve_warm(sf)
        for _ in range(4):
            sf = StandardForm(
                sf.c, sf.A_ub, sf.b_ub + rng.uniform(-0.05, 0.05, sf.b_ub.size),
                sf.A_eq, sf.b_eq, sf.lb, sf.ub, sf.integrality,
            )
            warm_res, warm = solver.solve_warm(sf, warm=warm)
            cold_res = SimplexSolver().solve(sf)
            assert warm_res.status == cold_res.status
            if cold_res.ok:
                assert warm_res.objective == pytest.approx(
                    cold_res.objective, abs=1e-8
                )
                assert warm_res.objective == pytest.approx(
                    ScipyLpBackend().solve(sf).objective, abs=1e-6
                )

    @pytest.mark.parametrize("seed", range(10))
    def test_bounds_only_changes(self, seed):
        """Branch-and-bound pattern: only lb/ub move between solves."""
        rng = np.random.default_rng(1000 + seed)
        sf = _random_feasible(rng)
        solver = SimplexSolver()
        base_res, warm = solver.solve_warm(sf)
        assert base_res.ok
        for _ in range(4):
            j = int(rng.integers(sf.n_vars))
            lb, ub = sf.lb.copy(), sf.ub.copy()
            pivot = float(np.floor(base_res.x[j]))
            if rng.random() < 0.5:
                ub[j] = pivot
            else:
                lb[j] = min(pivot + 1.0, ub[j])
            child = StandardForm(
                sf.c, sf.A_ub, sf.b_ub, sf.A_eq, sf.b_eq, lb, ub, sf.integrality
            )
            warm_res, _ = solver.solve_warm(child, warm=warm)
            cold_res = SimplexSolver().solve(child)
            assert warm_res.status == cold_res.status
            if cold_res.ok:
                assert warm_res.objective == pytest.approx(
                    cold_res.objective, abs=1e-8
                )

    def test_stale_foreign_token_falls_back(self):
        """A token from a structurally different LP must not corrupt results."""
        solver = SimplexSolver()
        big = _sf(c=[-1.0, -2.0, -3.0], A_ub=[[1, 1, 1]], b_ub=[6.0])
        _, foreign = solver.solve_warm(big)
        small = _sf(c=[-1.0], A_ub=[[1.0]], b_ub=[2.0])
        res, _ = solver.solve_warm(small, warm=foreign)
        assert res.ok
        assert res.objective == pytest.approx(-2.0)

    def test_infeasible_after_tightening(self):
        """Warm re-solve must still prove infeasibility, not mis-report."""
        solver = SimplexSolver()
        sf = _sf(c=[1.0, 1.0], A_ub=[[1.0, 1.0]], b_ub=[1.0])
        _, warm = solver.solve_warm(sf)
        tight = StandardForm(
            sf.c, sf.A_ub, sf.b_ub, sf.A_eq, sf.b_eq,
            np.array([2.0, 0.0]), sf.ub, sf.integrality,
        )
        res, _ = solver.solve_warm(tight, warm=warm)
        assert res.status is SolveStatus.INFEASIBLE


class TestDegenerateAndFlippedDuals:
    def test_flipped_row_duals_match_scipy(self):
        """Rows with negative RHS are negated internally; dual signs must
        map back to the user's orientation."""
        # min x + 2y  s.t.  -x - y <= -3  (i.e. x + y >= 3), x,y >= 0.
        sf = _sf(c=[1.0, 2.0], A_ub=[[-1.0, -1.0]], b_ub=[-3.0])
        r_sx = SimplexSolver().solve(sf)
        r_sp = ScipyLpBackend().solve(sf)
        assert r_sx.ok and r_sp.ok
        assert r_sx.objective == pytest.approx(3.0)
        assert r_sx.duals_ub[0] == pytest.approx(r_sp.duals_ub[0], abs=1e-8)
        # Binding >= row written as <= with negative RHS: dual is
        # negative (raising b_ub, i.e. relaxing, lowers the objective).
        assert r_sx.duals_ub[0] < 0

    def test_flipped_row_dual_is_rhs_sensitivity(self):
        sf = _sf(c=[1.0, 2.0], A_ub=[[-1.0, -1.0]], b_ub=[-3.0])
        base = SimplexSolver().solve(sf, ranging=True)
        lo, hi = base.rhs_range_ub[0]
        assert lo < 0.0 < hi or lo <= 0.0 <= hi
        eps = min(0.1, hi / 2 if hi > 0 else 0.1)
        bumped = _sf(c=[1.0, 2.0], A_ub=[[-1.0, -1.0]], b_ub=[-3.0 + eps])
        r2 = SimplexSolver().solve(bumped)
        assert r2.objective - base.objective == pytest.approx(
            base.duals_ub[0] * eps, abs=1e-8
        )

    def test_degenerate_optimum_duals_are_consistent(self):
        """Redundant binding rows make the dual non-unique; any returned
        vector must still satisfy strong duality and dual feasibility."""
        # min -x - y  s.t.  x + y <= 2  (twice), x <= 1, y <= 1.
        sf = _sf(
            c=[-1.0, -1.0],
            A_ub=[[1.0, 1.0], [1.0, 1.0]],
            b_ub=[2.0, 2.0],
            ub=[1.0, 1.0],
        )
        res = SimplexSolver().solve(sf)
        assert res.ok
        assert res.objective == pytest.approx(-2.0)
        y = res.duals_ub
        assert np.all(y <= 1e-9)  # <= rows of a minimization: duals <= 0
        # Strong duality with bound duals folded in: reduced costs on
        # the (binding) upper bounds absorb whatever the rows don't.
        reduced = sf.c - sf.A_ub.T @ y
        assert np.all(reduced >= -1e-9) or res.objective == pytest.approx(
            float(y @ sf.b_ub + np.minimum(reduced, 0.0) @ sf.ub), abs=1e-8
        )

    def test_degenerate_ranging_brackets_zero(self):
        sf = _sf(
            c=[-1.0, -1.0],
            A_ub=[[1.0, 1.0], [1.0, 1.0]],
            b_ub=[2.0, 2.0],
            ub=[1.0, 1.0],
        )
        res = SimplexSolver().solve(sf, ranging=True)
        assert res.rhs_range_ub is not None
        for lo, hi in res.rhs_range_ub:
            assert lo <= 1e-9 and hi >= -1e-9
