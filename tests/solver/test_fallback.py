"""Tests for the fallback backend (`repro.solver.fallback`)."""

import numpy as np
import pytest

from repro.solver import (
    BranchBoundSolver,
    FallbackBackend,
    Model,
    ScipyBackend,
    SolveResult,
    SolveStatus,
)


class _FailingBackend:
    """Backend stub: raises or returns a fixed status."""

    def __init__(self, status=None, raises=False, name="stub"):
        self.status = status
        self.raises = raises
        self.name = name
        self.calls = 0

    def solve(self, sf):
        self.calls += 1
        if self.raises:
            raise RuntimeError("synthetic backend crash")
        return SolveResult(status=self.status, backend=self.name)


def _toy_model():
    m = Model()
    x = m.var("x", lb=0.0, ub=4.0)
    z = m.integer("z", lb=0, ub=3)
    m.add(x + z <= 5)
    m.maximize(x + 2 * z)
    return m


class TestFallback:
    def test_needs_two_backends(self):
        with pytest.raises(ValueError):
            FallbackBackend(ScipyBackend())

    def test_primary_success_skips_fallback(self):
        secondary = _FailingBackend(status=SolveStatus.ERROR)
        fb = FallbackBackend(ScipyBackend(), secondary)
        res = _toy_model().solve(backend=fb)
        assert res.ok
        assert res.objective == pytest.approx(8.0)
        assert secondary.calls == 0

    def test_crash_falls_through(self):
        crasher = _FailingBackend(raises=True, name="crasher")
        fb = FallbackBackend(crasher, ScipyBackend())
        res = _toy_model().solve(backend=fb)
        assert res.ok
        assert crasher.calls == 1

    def test_error_status_falls_through(self):
        erroring = _FailingBackend(status=SolveStatus.ERROR, name="err")
        fb = FallbackBackend(erroring, BranchBoundSolver())
        res = _toy_model().solve(backend=fb)
        assert res.ok

    def test_infeasible_not_retried_by_default(self):
        secondary = _FailingBackend(status=SolveStatus.ERROR)
        infeasible = _FailingBackend(status=SolveStatus.INFEASIBLE, name="inf")
        fb = FallbackBackend(infeasible, secondary)
        res = fb.solve(_toy_model().to_standard_form())
        assert res.status is SolveStatus.INFEASIBLE
        assert secondary.calls == 0

    def test_infeasible_retried_when_enabled(self):
        infeasible = _FailingBackend(status=SolveStatus.INFEASIBLE, name="inf")
        fb = FallbackBackend(infeasible, ScipyBackend(), retry_infeasible=True)
        res = _toy_model().solve(backend=fb)
        assert res.ok

    def test_all_crash_reports_error(self):
        fb = FallbackBackend(
            _FailingBackend(raises=True, name="a"),
            _FailingBackend(raises=True, name="b"),
        )
        res = fb.solve(_toy_model().to_standard_form())
        assert res.status is SolveStatus.ERROR
        assert "a" in res.message and "b" in res.message

    def test_last_retryable_result_returned_with_history(self):
        fb = FallbackBackend(
            _FailingBackend(status=SolveStatus.NODE_LIMIT, name="a"),
            _FailingBackend(status=SolveStatus.ITERATION_LIMIT, name="b"),
        )
        res = fb.solve(_toy_model().to_standard_form())
        assert res.status is SolveStatus.ITERATION_LIMIT
        assert "a" in res.message

    def test_genuinely_infeasible_model_agrees_across_chain(self):
        m = Model()
        x = m.var("x", lb=0.0, ub=1.0)
        m.add(x >= 2.0)
        m.minimize(x)
        fb = FallbackBackend(ScipyBackend(), BranchBoundSolver(), retry_infeasible=True)
        res = m.solve(backend=fb)
        assert res.status is SolveStatus.INFEASIBLE

    def test_crash_then_status_then_success_chain(self):
        # A three-deep chain degrades backend by backend until one works.
        crasher = _FailingBackend(raises=True, name="crasher")
        limited = _FailingBackend(status=SolveStatus.NODE_LIMIT, name="limited")
        fb = FallbackBackend(crasher, limited, ScipyBackend())
        res = _toy_model().solve(backend=fb)
        assert res.ok
        assert res.objective == pytest.approx(8.0)
        assert crasher.calls == 1 and limited.calls == 1

    def test_exhausted_chain_does_not_mutate_backend_result(self):
        # Regression: the exhausted-chain path used to write the failure
        # history into `last.message` in place — corrupting the result
        # object the losing backend (and anything caching it) still held.
        class _Remembering(_FailingBackend):
            def solve(self, sf):
                self.result = super().solve(sf)
                return self.result

        a = _Remembering(status=SolveStatus.NODE_LIMIT, name="a")
        b = _Remembering(status=SolveStatus.ITERATION_LIMIT, name="b")
        res = FallbackBackend(a, b).solve(_toy_model().to_standard_form())
        assert res is not b.result
        assert b.result.message == ""
        assert res.status is SolveStatus.ITERATION_LIMIT
        assert "a" in res.message and "b" in res.message

    def test_usable_in_cost_minimizer(self):
        from repro.core import CostMinimizer
        from repro.experiments import paper_world

        w = paper_world(max_servers=500_000)
        sh = [s.hour(5) for s in w.sites]
        lam = float(w.workload.rates_rps[5])
        fb = FallbackBackend(ScipyBackend(), BranchBoundSolver(), retry_infeasible=True)
        d = CostMinimizer(backend=fb).solve(sh, lam)
        assert d.predicted_cost > 0


class TestFallbackTelemetry:
    """Failovers are counted so a month's worth of backend trouble shows
    up in ``repro telemetry summary`` instead of vanishing silently."""

    def _counters(self, tel):
        from repro.telemetry import snapshot, summarize

        return summarize(snapshot(tel))["counters"]

    def test_each_failover_counted(self):
        from repro.telemetry import Telemetry, use_telemetry

        crasher = _FailingBackend(raises=True, name="crasher")
        limited = _FailingBackend(status=SolveStatus.NODE_LIMIT, name="limited")
        fb = FallbackBackend(crasher, limited, ScipyBackend())
        tel = Telemetry()
        with use_telemetry(tel):
            res = _toy_model().solve(backend=fb)
        assert res.ok
        counters = self._counters(tel)
        assert counters["solver.fallback.failovers"] == 2
        assert counters["solver.fallback.failover.crasher"] == 1
        assert counters["solver.fallback.failover.limited"] == 1
        assert "solver.fallback.exhausted" not in counters

    def test_successful_primary_records_nothing(self):
        from repro.telemetry import Telemetry, use_telemetry

        fb = FallbackBackend(ScipyBackend(), _FailingBackend(raises=True))
        tel = Telemetry()
        with use_telemetry(tel):
            assert _toy_model().solve(backend=fb).ok
        assert "solver.fallback.failovers" not in self._counters(tel)

    def test_exhausted_chain_counted(self):
        from repro.telemetry import Telemetry, use_telemetry

        fb = FallbackBackend(
            _FailingBackend(raises=True, name="a"),
            _FailingBackend(raises=True, name="b"),
        )
        tel = Telemetry()
        with use_telemetry(tel):
            res = fb.solve(_toy_model().to_standard_form())
        assert res.status is SolveStatus.ERROR
        counters = self._counters(tel)
        assert counters["solver.fallback.failovers"] == 2
        assert counters["solver.fallback.exhausted"] == 1

    def test_disabled_telemetry_costs_nothing_and_records_nothing(self):
        from repro.telemetry import NULL, get_telemetry

        assert get_telemetry() is NULL
        fb = FallbackBackend(
            _FailingBackend(raises=True, name="a"), ScipyBackend()
        )
        assert _toy_model().solve(backend=fb).ok
        assert len(NULL.registry) == 0
