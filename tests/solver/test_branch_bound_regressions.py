"""Regression tests for branch-and-bound status reporting and node order.

Pins two subtle behaviors:

* When node LPs die on solver limits (not proven infeasibility) and no
  incumbent was ever found, the search must report ``NODE_LIMIT`` — an
  earlier version of the status plumbing made that branch unreachable
  and the tree claimed ``INFEASIBLE`` for problems it never actually
  explored.
* ``_Node`` heap ordering uses ``(bound, depth, tie)`` only; the lb/ub
  array payloads are excluded from comparison (``compare=False``), so
  ties never trigger elementwise NumPy comparisons inside ``heapq``.
"""

import dataclasses
import heapq

import numpy as np
import pytest

from repro.solver import (
    BranchBoundSolver,
    Model,
    ScipyBackend,
    SimplexSolver,
    SolveStatus,
    quicksum,
)
from repro.solver.branch_bound import _Node
from repro.solver.result import SolveResult


class _LimitAfterRoot:
    """Stub LP engine: optimal fractional root, then iteration limits."""

    name = "stub"

    def __init__(self, root_x):
        self.root_x = np.asarray(root_x, dtype=float)
        self.calls = 0

    def solve(self, sf):
        self.calls += 1
        if self.calls == 1:
            return SolveResult(
                status=SolveStatus.OPTIMAL,
                objective=0.0,
                x=self.root_x.copy(),
                backend=self.name,
            )
        return SolveResult(
            status=SolveStatus.ITERATION_LIMIT, backend=self.name
        )


class _InfeasibleAfterRoot(_LimitAfterRoot):
    def solve(self, sf):
        self.calls += 1
        if self.calls == 1:
            return SolveResult(
                status=SolveStatus.OPTIMAL,
                objective=0.0,
                x=self.root_x.copy(),
                backend=self.name,
            )
        return SolveResult(status=SolveStatus.INFEASIBLE, backend=self.name)


def _one_binary_sf():
    m = Model()
    z = m.binary("z")
    m.minimize(z)
    return m.to_standard_form()


class TestLimitStatusReporting:
    def test_limit_dropped_subtrees_report_node_limit(self):
        """Feasible-but-unsolved subtrees must not be claimed infeasible."""
        sf = _one_binary_sf()
        solver = BranchBoundSolver(
            lp_solver=_LimitAfterRoot([0.5]), warm_start=False
        )
        res = solver.solve(sf)
        assert res.status is SolveStatus.NODE_LIMIT
        assert "no incumbent" in res.message

    def test_proven_infeasible_subtrees_still_report_infeasible(self):
        sf = _one_binary_sf()
        solver = BranchBoundSolver(
            lp_solver=_InfeasibleAfterRoot([0.5]), warm_start=False
        )
        res = solver.solve(sf)
        assert res.status is SolveStatus.INFEASIBLE


class TestNodeOrdering:
    def test_arrays_excluded_from_comparison(self):
        by_field = {f.name: f for f in dataclasses.fields(_Node)}
        for name in ("lb", "ub", "warm"):
            assert by_field[name].compare is False

    def test_heap_ties_never_compare_arrays(self):
        # Equal bound and depth: only the distinct tie breaks the tie.
        # With arrays in the comparison this would raise ("truth value
        # of an array...") or, worse, order nondeterministically.
        a = _Node(bound=1.0, depth=2, tie=0, lb=np.zeros(3), ub=np.ones(3))
        b = _Node(bound=1.0, depth=2, tie=1, lb=np.zeros(5), ub=np.ones(5))
        heap = [b, a]
        heapq.heapify(heap)
        assert heapq.heappop(heap) is a
        assert a < b and not (b < a)

    def test_lower_bound_pops_first(self):
        lo = _Node(bound=-5.0, depth=9, tie=3, lb=np.zeros(2), ub=np.ones(2))
        hi = _Node(bound=-1.0, depth=0, tie=0, lb=np.zeros(2), ub=np.ones(2))
        heap = [hi, lo]
        heapq.heapify(heap)
        assert heapq.heappop(heap) is lo


class TestWarmColdEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_knapsacks(self, seed):
        """Warm-started own stack == cold own stack == HiGHS, repeatedly.

        The second warm solve reuses the first's root basis and seeds
        its incumbent — the exact hourly-dispatch reuse pattern.
        """
        rng = np.random.default_rng(seed)
        n = 7
        values = rng.integers(5, 40, size=n)
        weights = rng.integers(1, 10, size=n)
        cap = int(weights.sum() * 0.55)
        m = Model("knap")
        xs = [m.binary(f"x{i}") for i in range(n)]
        m.add(quicksum(int(w) * x for w, x in zip(weights, xs)) <= cap)
        m.maximize(quicksum(int(v) * x for v, x in zip(values, xs)))
        sf = m.to_standard_form()

        warm = BranchBoundSolver(lp_solver=SimplexSolver(), warm_start=True)
        cold = BranchBoundSolver(lp_solver=SimplexSolver(), warm_start=False)
        first = warm.solve(sf)
        again = warm.solve(sf, warm_x=first.x)  # root-basis + incumbent reuse
        reference = ScipyBackend().solve(sf)
        assert first.ok and again.ok and reference.ok
        assert first.objective == pytest.approx(reference.objective, abs=1e-6)
        assert again.objective == pytest.approx(reference.objective, abs=1e-6)
        assert cold.solve(sf).objective == pytest.approx(
            reference.objective, abs=1e-6
        )
