"""Unit tests for the tariff components (energy + demand charges)."""

import pytest

from repro.billing import (
    DEFAULT_DEMAND_RATE_PER_KW,
    DemandCharge,
    EnergyCharge,
    HourUsage,
    LineItem,
)


class TestLineItem:
    def test_round_trip_without_detail(self):
        item = LineItem("energy", 123.456)
        back = LineItem.from_dict(item.to_dict())
        assert back.component == "energy"
        assert back.amount == 123.456
        assert "detail" not in item.to_dict()

    def test_round_trip_with_detail(self):
        item = LineItem("demand", 9.0, detail={"peak_mw": 4.5})
        back = LineItem.from_dict(item.to_dict())
        assert back.detail == {"peak_mw": 4.5}


class TestEnergyCharge:
    def test_charge_is_the_energy_cost_bitwise(self):
        # The default-identity contract: the line item IS the accrued
        # realized cost, the exact float, not a recomputation.
        cost = 0.1 + 0.2  # a float with representation error on purpose
        item = EnergyCharge().charge(HourUsage(0, cost, 50.0))
        assert item.component == "energy"
        assert item.amount == cost

    def test_project_returns_candidate_energy(self):
        assert EnergyCharge().project(3, 77.0, 10.0) == 77.0

    def test_no_peak_term(self):
        assert EnergyCharge().peak_term(0) is None

    def test_round_trip(self):
        back = EnergyCharge.from_dict(EnergyCharge().to_dict())
        assert isinstance(back, EnergyCharge)

    def test_rejects_parameters(self):
        with pytest.raises(ValueError, match="no parameters"):
            EnergyCharge.from_params({"rate": "2"})


class TestDemandCharge:
    def test_validation(self):
        with pytest.raises(ValueError):
            DemandCharge(rate_per_kw=-1.0)
        with pytest.raises(ValueError):
            DemandCharge(cycle_hours=0)

    def test_defaults(self):
        d = DemandCharge()
        assert d.rate_per_kw == DEFAULT_DEMAND_RATE_PER_KW
        assert d.penalty_per_mw == DEFAULT_DEMAND_RATE_PER_KW * 1000.0

    def test_incremental_billing_telescopes_to_peak(self):
        d = DemandCharge(rate_per_kw=2.0, cycle_hours=24)
        powers = [10.0, 30.0, 20.0, 30.0, 45.0, 5.0]
        items = [d.charge(HourUsage(h, 0.0, p)) for h, p in enumerate(powers)]
        total = sum(i.amount for i in items)
        assert total == pytest.approx(2.0 * 1000.0 * max(powers))
        # Non-peak hours bill nothing.
        assert items[2].amount == 0.0
        assert items[5].amount == 0.0

    def test_cycle_boundary_resets_the_peak(self):
        d = DemandCharge(rate_per_kw=1.0, cycle_hours=2)
        d.charge(HourUsage(0, 0.0, 40.0))
        d.charge(HourUsage(1, 0.0, 10.0))
        # Hour 2 opens a new cycle: the whole power is new peak again.
        item = d.charge(HourUsage(2, 0.0, 25.0))
        assert item.amount == pytest.approx(1000.0 * 25.0)
        assert d.cycle == 1
        assert d.peak_mw == 25.0

    def test_project_prices_only_the_excess(self):
        d = DemandCharge(rate_per_kw=1.0, cycle_hours=24)
        d.charge(HourUsage(0, 0.0, 30.0))
        assert d.project(1, 0.0, 20.0) == 0.0
        assert d.project(1, 0.0, 50.0) == pytest.approx(1000.0 * 20.0)
        # A different cycle projects against a zero peak.
        assert d.project(24, 0.0, 50.0) == pytest.approx(1000.0 * 50.0)

    def test_peak_term_exposes_cycle_peak_and_penalty(self):
        d = DemandCharge(rate_per_kw=3.0, cycle_hours=24)
        assert d.peak_term(0) == (0.0, 3000.0)
        d.charge(HourUsage(0, 0.0, 12.0))
        assert d.peak_term(1) == (12.0, 3000.0)
        assert d.peak_term(24) == (0.0, 3000.0)  # next cycle

    def test_zero_rate_has_no_peak_term(self):
        assert DemandCharge(rate_per_kw=0.0).peak_term(0) is None

    def test_round_trip_preserves_cycle_state(self):
        d = DemandCharge(rate_per_kw=2.5, cycle_hours=48)
        d.charge(HourUsage(5, 0.0, 33.25))
        back = DemandCharge.from_dict(d.to_dict())
        assert back.rate_per_kw == 2.5
        assert back.cycle_hours == 48
        assert back.peak_mw == d.peak_mw
        assert back.cycle == d.cycle

    def test_unstarted_round_trip_keeps_cycle_none(self):
        back = DemandCharge.from_dict(DemandCharge().to_dict())
        assert back.cycle is None

    def test_from_params_aliases(self):
        d = DemandCharge.from_params({"rate": "6", "cycle": "168"})
        assert (d.rate_per_kw, d.cycle_hours) == (6.0, 168)
        d = DemandCharge.from_params(
            {"rate_per_kw": "1.5", "cycle_hours": "720"}
        )
        assert (d.rate_per_kw, d.cycle_hours) == (1.5, 720)

    def test_from_params_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown demand-charge"):
            DemandCharge.from_params({"ratez": "6"})
