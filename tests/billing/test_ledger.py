"""Unit tests for the settlement ledger, including the bit-identity fold."""

import random

import pytest

from repro.billing import (
    DemandCharge,
    EnergyCharge,
    SettlementLedger,
    make_ledger,
)


def test_requires_at_least_one_component():
    with pytest.raises(ValueError, match=">= 1 component"):
        SettlementLedger([])


def test_rejects_duplicate_components():
    with pytest.raises(ValueError, match="duplicate"):
        SettlementLedger([EnergyCharge(), EnergyCharge()])


def test_accrual_fold_is_bitwise_identical_to_scalar_plumbing():
    # The control loop's historical accrual was `acc += cost * weight`
    # folded from 0.0 in arrival order. The ledger must produce the
    # same float exactly, not merely approximately, or decision logs
    # change bytes under the default tariff.
    rng = random.Random(42)
    segments = [(rng.uniform(0, 500), rng.uniform(0, 1)) for _ in range(50)]

    acc = 0.0
    ledger = make_ledger("energy")
    for cost, weight in segments:
        acc += cost * weight
        ledger.accrue(cost, cost / 10.0, weight)

    items = ledger.settle(0)
    assert len(items) == 1
    assert items[0].amount == acc  # bitwise
    assert SettlementLedger.total(items) == acc  # 0.0 + x == x bitwise


def test_settle_resets_accruals():
    ledger = make_ledger("energy")
    ledger.accrue(100.0, 10.0)
    ledger.settle(0)
    items = ledger.settle(1)
    assert items[0].amount == 0.0


def test_total_folds_from_zero_in_order():
    ledger = make_ledger("energy+demand:rate=1,cycle=24")
    ledger.accrue(250.0, 40.0)
    items = ledger.settle(0)
    assert [i.component for i in items] == ["energy", "demand"]
    assert SettlementLedger.total(items) == 250.0 + 40.0 * 1000.0


def test_project_sums_components():
    ledger = make_ledger("energy+demand:rate=1,cycle=24")
    assert ledger.project(0, 80.0, 30.0) == 80.0 + 30.0 * 1000.0


def test_peak_term_delegates_to_first_pricing_component():
    assert make_ledger("energy").peak_term(0) is None
    ledger = make_ledger("energy+demand:rate=3,cycle=24")
    assert ledger.peak_term(0) == (0.0, 3000.0)
    ledger.accrue(10.0, 25.0)
    ledger.settle(0)
    assert ledger.peak_term(1) == (25.0, 3000.0)


def test_component_lookup_and_flags():
    ledger = make_ledger("energy+demand")
    assert ledger.component_names == ("energy", "demand")
    assert isinstance(ledger.component("demand"), DemandCharge)
    assert ledger.component("nope") is None
    assert not ledger.is_energy_only
    assert make_ledger(None).is_energy_only


def test_state_round_trip_preserves_accruals_bitwise():
    ledger = make_ledger("energy+demand:rate=2,cycle=48")
    ledger.accrue(123.456, 45.25, 0.7)
    ledger.accrue(9.5, 10.0, 0.3)
    ledger.settle(0)
    ledger.accrue(0.1, 0.2, 0.3)  # leave a partial hour open

    back = SettlementLedger.from_dict(ledger.to_dict())
    assert back.tariff == ledger.tariff
    assert back.component_names == ledger.component_names
    assert back.to_dict() == ledger.to_dict()
    # The open-hour accruals settle to the same floats.
    assert [i.to_dict() for i in back.settle(1)] == [
        i.to_dict() for i in ledger.settle(1)
    ]


def test_from_dict_rejects_unknown_version():
    payload = make_ledger("energy").to_dict()
    payload["v"] = 99
    with pytest.raises(ValueError, match="ledger state version"):
        SettlementLedger.from_dict(payload)
