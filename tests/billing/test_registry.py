"""Unit tests for the tariff registry and spec parsing."""

import pytest

from repro.billing import (
    DEFAULT_TARIFF,
    DemandCharge,
    EnergyCharge,
    LineItem,
    TariffComponent,
    available_tariffs,
    get_tariff,
    make_ledger,
    register_tariff,
    restore_component,
    restore_ledger,
)
from repro.billing import registry as registry_mod


def test_builtins_are_registered():
    names = available_tariffs()
    assert "energy" in names
    assert "demand" in names
    assert names == tuple(sorted(names))


def test_default_tariff_is_energy_only():
    assert DEFAULT_TARIFF == "energy"
    ledger = make_ledger(None)
    assert ledger.is_energy_only
    assert ledger.tariff == "energy"
    # Blank specs also fall back to the default.
    assert make_ledger("  ").is_energy_only


def test_get_tariff_unknown_name_lists_available():
    with pytest.raises(ValueError, match="unknown tariff 'tou'"):
        get_tariff("tou")


def test_make_ledger_parses_parameters_and_aliases():
    ledger = make_ledger("energy+demand:rate=6,cycle=168")
    demand = ledger.component("demand")
    assert demand.rate_per_kw == 6.0
    assert demand.cycle_hours == 168
    assert ledger.tariff == "energy+demand:rate=6,cycle=168"

    long_form = make_ledger("demand:rate_per_kw=1.5,cycle_hours=720")
    assert long_form.component("demand").rate_per_kw == 1.5
    assert long_form.component("demand").cycle_hours == 720


def test_make_ledger_fresh_state_per_call():
    a = make_ledger("energy+demand")
    b = make_ledger("energy+demand")
    assert a.component("demand") is not b.component("demand")


def test_make_ledger_spec_errors():
    with pytest.raises(ValueError, match="empty component"):
        make_ledger("energy+")
    with pytest.raises(ValueError, match="key=value"):
        make_ledger("demand:rate6")
    with pytest.raises(ValueError, match="unknown demand-charge"):
        make_ledger("demand:ratez=6")
    with pytest.raises(ValueError, match="no parameters"):
        make_ledger("energy:rate=6")
    with pytest.raises(ValueError, match="unknown tariff"):
        make_ledger("energy+carbon")


def test_register_tariff_validation_and_replace():
    class _Flat(TariffComponent):
        name = "flat-fee"

        def charge(self, hour_ctx):
            return LineItem("flat-fee", 1.0)

        def to_dict(self):
            return {"kind": "flat-fee"}

        @classmethod
        def from_dict(cls, data):
            return cls()

    try:
        with pytest.raises(ValueError, match="non-empty string"):
            register_tariff("", _Flat)
        with pytest.raises(TypeError, match="subclass TariffComponent"):
            register_tariff("flat-fee", object)
        with pytest.raises(ValueError, match="is named"):
            register_tariff("wrong-name", _Flat)

        register_tariff("flat-fee", _Flat)
        assert "flat-fee" in available_tariffs()
        assert isinstance(get_tariff("flat-fee"), _Flat)

        with pytest.raises(ValueError, match="already registered"):
            register_tariff("flat-fee", _Flat)
        register_tariff("flat-fee", _Flat, replace=True)  # allowed

        ledger = make_ledger("energy+flat-fee")
        ledger.accrue(10.0, 1.0)
        items = ledger.settle(0)
        assert [i.component for i in items] == ["energy", "flat-fee"]
        assert items[1].amount == 1.0
    finally:
        registry_mod._COMPONENTS.pop("flat-fee", None)


def test_restore_component_dispatches_on_kind():
    assert isinstance(restore_component({"kind": "energy"}), EnergyCharge)
    demand = restore_component(
        {"kind": "demand", "rate_per_kw": 4.0, "cycle_hours": 12,
         "peak_mw": 7.5, "cycle": 3}
    )
    assert isinstance(demand, DemandCharge)
    assert demand.peak_mw == 7.5
    with pytest.raises(ValueError, match="unknown tariff"):
        restore_component({"kind": "carbon"})


def test_restore_ledger_none_migrates_to_energy_default():
    # Pre-tariff checkpoints have no ledger payload at all.
    ledger = restore_ledger(None)
    assert ledger.is_energy_only
    assert ledger.tariff == DEFAULT_TARIFF


def test_restore_ledger_round_trips_state():
    ledger = make_ledger("energy+demand:rate=2,cycle=24")
    ledger.accrue(50.0, 20.0)
    ledger.settle(0)
    back = restore_ledger(ledger.to_dict())
    assert back.to_dict() == ledger.to_dict()
