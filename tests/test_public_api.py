"""Public-API surface checks.

Guards the import structure a downstream user relies on: top-level
re-exports exist, every name in each subpackage's ``__all__`` resolves,
and the version marker is sane.
"""

import importlib

import pytest

import repro

SUBPACKAGES = (
    "repro.solver",
    "repro.powermarket",
    "repro.datacenter",
    "repro.workload",
    "repro.core",
    "repro.sim",
    "repro.routing",
    "repro.experiments",
    "repro.telemetry",
    "repro.resilience",
)


class TestTopLevel:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_headline_exports(self):
        for name in (
            "BillCapper",
            "Budgeter",
            "CostMinimizer",
            "ThroughputMaximizer",
            "MinOnlyDispatcher",
            "PriceMode",
            "Site",
            "Simulator",
            "SimulationResult",
            "PaperWorld",
            "paper_world",
        ):
            assert hasattr(repro, name), name

    def test_all_matches_attributes(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackages:
    def test_imports(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_all_is_deduplicated(self, module_name):
        module = importlib.import_module(module_name)
        names = list(getattr(module, "__all__", ()))
        assert len(names) == len(set(names))


class TestCliEntry:
    def test_module_entry_file_exists(self):
        # `repro.__main__` calls sys.exit on import (as __main__ shims
        # do), so assert its presence without importing it.
        import pathlib

        assert (pathlib.Path(repro.__file__).parent / "__main__.py").exists()

    def test_parser_builds(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.prog == "repro"
