"""Regenerate the pinned energy-default fixtures in this directory.

Run from the repo root against a known-good tree::

    PYTHONPATH=src python tests/fixtures/tariff/gen_fixtures.py

The fixtures pin the pre-tariff-refactor outputs: hourly records, an
engine checkpoint, a single-process serve decision log + service
checkpoint, and a sharded serial merged log + shard checkpoint. The
billing-layer tests assert the default ``energy`` tariff still produces
exactly these bytes/fields, and that the old checkpoint versions load
via migration.
"""

from __future__ import annotations

import asyncio
import json
import pathlib

HERE = pathlib.Path(__file__).parent

MONTHLY_BUDGET = 800_000.0
ENGINE_HOURS = 6
SERVE_HOURS = 3
SHARD_HOURS = 3

SOURCE = {
    "kind": "replay",
    "ticks_per_hour": 4,
    "hours": SERVE_HOURS,
    "seed": 0,
    "jitter": 0.02,
    "ca2": 4.0,
    "price_jitter": 0.0,
    "sites": [],
    "trace_file": None,
}

SHARD_SPEC = {
    "world": {"kind": "paper", "policy": 1, "seed": 7},
    "source": dict(SOURCE, hours=SHARD_HOURS),
    "strategy": "capping",
    "trigger": {
        "lambda_delta": 0.05,
        "price_delta": 0.05,
        "debounce_s": 120.0,
        "max_staleness_s": 900.0,
    },
    "degradation": "proportional",
    "horizon": SHARD_HOURS,
    "monthly_budget": MONTHLY_BUDGET,
}


def gen_engine() -> None:
    from repro.experiments import paper_world
    from repro.sim import Engine

    world = paper_world(1, seed=7)
    engine = Engine(world.sites, world.workload, world.mix)
    ckpt = HERE / "engine_ckpt.json"
    result = engine.run(
        "capping",
        budgeter=world.budgeter(MONTHLY_BUDGET),
        hours=ENGINE_HOURS,
        checkpoint_path=ckpt,
        checkpoint_meta={"policy": 1, "seed": 7},
    )
    (HERE / "engine_records.json").write_text(
        json.dumps([h.to_dict() for h in result.hours], indent=1) + "\n"
    )
    print(f"engine: {len(result.hours)} records, ckpt -> {ckpt.name}")


def gen_serve() -> None:
    from repro.experiments import paper_world
    from repro.service import (
        ControlLoop,
        ControlPlaneService,
        TriggerPolicy,
        build_ticks,
    )
    from repro.sim import Engine

    world = paper_world(1, seed=7)
    engine = Engine(world.sites, world.workload, world.mix)
    ticks = build_ticks(world.workload, SOURCE)
    loop = ControlLoop(
        engine,
        "capping",
        trigger=TriggerPolicy(**SHARD_SPEC["trigger"]),
        budgeter=world.budgeter(MONTHLY_BUDGET),
        hours=SERVE_HOURS,
    )
    meta = {
        "policy": 1,
        "seed": 7,
        "decision_log": str(HERE / "serve_decisions.jsonl"),
        "monthly_budget": MONTHLY_BUDGET,
        "source": SOURCE,
    }
    service = ControlPlaneService(
        loop,
        ticks,
        http=False,
        decision_log=HERE / "serve_decisions.jsonl",
        checkpoint_path=HERE / "service_ckpt.json",
        meta=meta,
        handle_signals=False,
    )
    summary = asyncio.run(service.run())
    print(f"serve: {summary['decisions']} decisions, "
          f"{summary['hours']} hours settled")


def gen_shard() -> None:
    from repro.service.shard import (
        RegionDriver,
        ShardCoordinator,
        _DirectLedger,
        _build_engine,
        _build_spec_ticks,
        build_world,
        plan_regions,
    )

    spec = SHARD_SPEC
    world = build_world(spec["world"])
    engine = _build_engine(world)
    regions = plan_regions(engine)
    budgeter = world.budgeter(float(spec["monthly_budget"]))
    coordinator = ShardCoordinator(
        regions,
        budgeter,
        horizon=spec["horizon"],
        spec=spec,
        checkpoint_path=HERE / "shard_ckpt.json",
        meta={"spec": spec, "decision_log": "unused", "workers": 1},
    )
    ticks = _build_spec_ticks(world, spec["source"])
    per_region: dict[int, list[str]] = {r.index: [] for r in regions}

    def emit(region, event, wall_s, produced_mono):
        per_region[region].append(event.to_json())

    driver = RegionDriver(
        engine,
        regions,
        [r.index for r in regions],
        ticks,
        spec,
        _DirectLedger(coordinator),
        emit=emit,
    )
    driver.run()
    merged = []
    for r, lines in sorted(per_region.items()):
        for line in lines:
            merged.append((json.loads(line)["tick_seq"], r, line))
    merged.sort(key=lambda e: (e[0], e[1]))
    (HERE / "shard_merged.jsonl").write_text(
        "".join(line + "\n" for _, _, line in merged)
    )
    print(f"shard: {len(merged)} merged lines, "
          f"{coordinator.settled_hours} hours settled")


if __name__ == "__main__":
    gen_engine()
    gen_serve()
    gen_shard()
