"""Smoke tests: the fast example scripts run end to end.

Each example is executed in-process via runpy with a captured stdout;
only the quick ones run here (the month-scale examples are exercised
manually / by their underlying APIs' tests).
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "lmp_exploration.py",
    "heterogeneous_fleet.py",
]


@pytest.mark.slow
@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 200  # produced a real report


def test_all_examples_have_docstrings_and_main():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.startswith('#!/usr/bin/env python\n"""'), script.name
        assert 'if __name__ == "__main__":' in text, script.name
