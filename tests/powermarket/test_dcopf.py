"""Unit tests for the DC-OPF and LMP extraction (`repro.powermarket.dcopf`)."""

import numpy as np
import pytest

from repro.powermarket import (
    Bus,
    DcOpf,
    Generator,
    Grid,
    Line,
    LOAD_SHARES,
    pjm5bus,
)
from repro.solver import ScipyLpBackend, SimplexSolver
from repro.solver.branch_bound import BranchBoundSolver


def _two_bus(limit=np.inf):
    """Cheap generator at X, load at Y, single possibly-limited line."""
    return Grid(
        buses=[Bus("X"), Bus("Y")],
        lines=[Line("X", "Y", reactance=0.1, limit_mw=limit)],
        generators=[
            Generator("Cheap", "X", max_mw=500.0, cost=10.0),
            Generator("Local", "Y", max_mw=500.0, cost=50.0),
        ],
    )


class TestTwoBus:
    def test_uncongested_single_price(self):
        res = DcOpf(_two_bus()).dispatch({"Y": 100.0})
        assert res.feasible
        assert res.lmp_at("X") == pytest.approx(10.0)
        assert res.lmp_at("Y") == pytest.approx(10.0)
        assert res.generation["Cheap"] == pytest.approx(100.0)
        assert res.total_cost == pytest.approx(1000.0)

    def test_congestion_splits_prices(self):
        res = DcOpf(_two_bus(limit=60.0)).dispatch({"Y": 100.0})
        assert res.feasible
        # 60 MW imported at $10; the remaining 40 MW from the local $50 unit.
        assert res.generation["Cheap"] == pytest.approx(60.0)
        assert res.generation["Local"] == pytest.approx(40.0)
        assert res.lmp_at("X") == pytest.approx(10.0)
        assert res.lmp_at("Y") == pytest.approx(50.0)

    def test_flow_respects_limit(self):
        res = DcOpf(_two_bus(limit=60.0)).dispatch({"Y": 100.0})
        assert abs(res.flows["X-Y"]) <= 60.0 + 1e-6

    def test_infeasible_when_load_exceeds_capacity(self):
        res = DcOpf(_two_bus()).dispatch({"Y": 2000.0})
        assert not res.feasible
        assert np.isnan(res.total_cost)

    def test_zero_load(self):
        res = DcOpf(_two_bus()).dispatch({})
        assert res.feasible
        assert res.total_cost == pytest.approx(0.0)

    def test_input_validation(self):
        opf = DcOpf(_two_bus())
        with pytest.raises(KeyError):
            opf.dispatch({"Q": 10.0})
        with pytest.raises(ValueError):
            opf.dispatch({"Y": -5.0})

    def test_lmp_is_marginal_cost_of_load(self):
        # Finite-difference check of the dual interpretation.
        opf = DcOpf(_two_bus(limit=60.0))
        base = opf.dispatch({"Y": 100.0})
        bumped = opf.dispatch({"Y": 101.0})
        assert bumped.total_cost - base.total_cost == pytest.approx(
            base.lmp_at("Y"), rel=1e-6
        )


class TestPjm5Bus:
    def test_low_load_flat_at_brighton_cost(self):
        res = DcOpf(pjm5bus()).dispatch({b: 100.0 for b in ("B", "C", "D")})
        assert res.feasible
        for bus in ("A", "B", "C", "D", "E"):
            assert res.lmp_at(bus) == pytest.approx(10.0)

    def test_step_when_brighton_exhausted(self):
        # System load just above Brighton's 600 MW: marginal unit is Alta ($14).
        res = DcOpf(pjm5bus()).dispatch({b: 640.0 / 3 for b in ("B", "C", "D")})
        assert res.feasible
        assert res.generation["Brighton"] == pytest.approx(600.0, abs=1e-6)
        assert res.lmp_at("B") == pytest.approx(14.0)

    def test_congestion_separates_lmps(self):
        # Past ~712 MW the E-D line binds and bus prices diverge.
        res = DcOpf(pjm5bus()).dispatch({b: 800.0 / 3 for b in ("B", "C", "D")})
        assert res.feasible
        assert abs(res.flows["D-E"]) == pytest.approx(240.0, abs=1e-6)
        lmps = [res.lmp_at(b) for b in ("B", "C", "D")]
        assert len({round(x, 3) for x in lmps}) == 3  # all distinct
        # D (import-constrained) is the most expensive consumer bus.
        assert res.lmp_at("D") == max(lmps)

    def test_generation_meets_load(self):
        res = DcOpf(pjm5bus()).dispatch({b: 250.0 for b in ("B", "C", "D")})
        assert sum(res.generation.values()) == pytest.approx(750.0, abs=1e-6)

    def test_merit_order_dispatch(self):
        res = DcOpf(pjm5bus()).dispatch({b: 150.0 for b in ("B", "C", "D")})
        # 450 MW total: Brighton ($10) should carry everything.
        assert res.generation["Brighton"] == pytest.approx(450.0, abs=1e-6)
        assert res.generation["Solitude"] == pytest.approx(0.0, abs=1e-6)

    def test_uncongested_variant_keeps_uniform_prices(self):
        grid = pjm5bus(ed_limit_mw=np.inf)
        res = DcOpf(grid).dispatch({b: 800.0 / 3 for b in ("B", "C", "D")})
        lmps = {round(res.lmp_at(b), 6) for b in ("A", "B", "C", "D", "E")}
        assert len(lmps) == 1  # no congestion -> single system price

    def test_simplex_backend_matches_highs(self):
        loads = {b: 720.0 / 3 for b in ("B", "C", "D")}
        r_hi = DcOpf(pjm5bus()).dispatch(loads)
        r_sx = DcOpf(pjm5bus(), backend=SimplexSolver()).dispatch(loads)
        assert r_sx.feasible
        assert r_sx.total_cost == pytest.approx(r_hi.total_cost, rel=1e-6)
        for bus in ("B", "C", "D"):
            assert r_sx.lmp_at(bus) == pytest.approx(r_hi.lmp_at(bus), abs=1e-4)


class TestSweep:
    def test_lmp_sweep_shapes(self):
        opf = DcOpf(pjm5bus())
        loads = np.array([100.0, 400.0, 700.0])
        out = opf.lmp_sweep(LOAD_SHARES, loads)
        assert set(out) == {"B", "C", "D"}
        for arr in out.values():
            assert arr.shape == (3,)

    def test_lmp_nondecreasing_with_load_at_b(self):
        opf = DcOpf(pjm5bus())
        loads = np.arange(50.0, 900.0, 50.0)
        out = opf.lmp_sweep(LOAD_SHARES, loads)
        b = out["B"][~np.isnan(out["B"])]
        assert np.all(np.diff(b) >= -1e-6)

    def test_infeasible_levels_are_nan(self):
        opf = DcOpf(pjm5bus())
        out = opf.lmp_sweep(LOAD_SHARES, np.array([100.0, 5000.0]))
        assert not np.isnan(out["B"][0])
        assert np.isnan(out["B"][1])

    def test_bad_shares_rejected(self):
        opf = DcOpf(pjm5bus())
        with pytest.raises(ValueError, match="shares"):
            opf.lmp_sweep({"B": 0.5, "C": 0.2}, np.array([100.0]))


class _BalanceFirstOpf(DcOpf):
    """A DcOpf whose equality rows come out balance-first.

    Simulates a future `_build` refactor that reorders constraint
    insertion: any code mapping duals or RHS ranges by *positional
    offset* (``len(lines) + i``) silently reads the wrong row here,
    while name-based resolution stays correct.
    """

    def _build(self, loads):
        m, gen_vars, flow_vars, balance_order = super()._build(loads)
        ubs = [c for c in m._constrs if c.kind == "<="]
        eqs = [c for c in m._constrs if c.kind == "=="]
        balance = [c for c in eqs if c.name.startswith("balance[")]
        flows = [c for c in eqs if c.name.startswith("flow[")]
        m._constrs[:] = ubs + balance + flows
        return m, gen_vars, flow_vars, balance_order


class _DualLessBackend:
    """Optimal primal solution, no duals — like a MILP-mode backend."""

    def __init__(self):
        self._inner = ScipyLpBackend()

    def solve(self, sf):
        res = self._inner.solve(sf)
        res.duals_eq = np.empty(0)
        res.backend = "dual-less-stub"
        return res


class TestHeadroomRegressions:
    """`load_growth_headroom` must resolve the balance row by name."""

    def _grid(self):
        return _two_bus(limit=60.0)

    def test_headroom_survives_constraint_reordering(self):
        # Pre-fix: row = len(lines) + balance_order.index(bus) points at
        # a flow-coupling row once balances are inserted first, so the
        # two orderings disagree.  Post-fix both resolve `balance[Y]`.
        loads = {"Y": 50.0}
        baseline = DcOpf(self._grid()).load_growth_headroom(loads, "Y")
        reordered = _BalanceFirstOpf(self._grid()).load_growth_headroom(loads, "Y")
        assert reordered == pytest.approx(baseline)
        assert baseline == pytest.approx(10.0, abs=1e-6)

    def test_headroom_is_incremental_mw(self):
        # Within the reported headroom every LMP is unchanged; just past
        # it the import line saturates and Y's price jumps to the local
        # unit.  That only holds if the value is a delta above the
        # current load, not an absolute RHS level.
        opf = DcOpf(self._grid())
        loads = {"Y": 50.0}
        h = opf.load_growth_headroom(loads, "Y")
        assert h == pytest.approx(10.0, abs=1e-6)
        base = opf.dispatch(loads)
        inside = opf.dispatch({"Y": 50.0 + 0.9 * h})
        beyond = opf.dispatch({"Y": 50.0 + h + 1.0})
        for bus in ("X", "Y"):
            assert inside.lmp_at(bus) == pytest.approx(base.lmp_at(bus), abs=1e-6)
        assert beyond.lmp_at("Y") == pytest.approx(50.0)

    def test_reordered_model_still_prices_correctly(self):
        # The dispatch-side dual mapping is name-based too.
        res = _BalanceFirstOpf(self._grid()).dispatch({"Y": 100.0})
        assert res.feasible
        assert res.lmp_at("X") == pytest.approx(10.0)
        assert res.lmp_at("Y") == pytest.approx(50.0)


class TestShareToleranceRegression:
    """`lmp_sweep` accepts float-accumulated shares and renormalizes."""

    def test_rounded_thirds_accepted(self):
        # round(1/3, 7) * 3 sums to 0.9999999 — rejected by the old
        # absolute 1e-9 gate, accepted (and renormalized) now.
        opf = DcOpf(pjm5bus())
        thirds = {b: round(1 / 3, 7) for b in ("B", "C", "D")}
        assert abs(sum(thirds.values()) - 1.0) > 1e-8  # would fail pre-fix
        loads = np.array([300.0, 660.0, 800.0])
        approx = opf.lmp_sweep(thirds, loads)
        exact = opf.lmp_sweep({b: 1 / 3 for b in ("B", "C", "D")}, loads)
        for bus in ("B", "C", "D"):
            np.testing.assert_allclose(approx[bus], exact[bus], atol=1e-6)

    def test_grossly_wrong_shares_still_rejected(self):
        opf = DcOpf(pjm5bus())
        with pytest.raises(ValueError, match="shares"):
            opf.lmp_sweep({"B": 0.7, "C": 0.2, "D": 0.2}, np.array([100.0]))


class TestDualLessBackendError:
    def test_dispatch_names_backend_when_duals_missing(self):
        opf = DcOpf(_two_bus(), backend=_DualLessBackend())
        with pytest.raises(ValueError, match="dual-less-stub"):
            opf.dispatch({"Y": 100.0})

    def test_unknown_bus_still_keyerror(self):
        # The hoisted bus-name set keeps validation behavior identical.
        with pytest.raises(KeyError, match="Q"):
            DcOpf(_two_bus()).dispatch({"Q": 10.0})
