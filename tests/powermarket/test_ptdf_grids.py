"""Tests for PTDF computation and the extra benchmark grids."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.powermarket import (
    DcOpf,
    compute_ptdf,
    congestion_exposure,
    derive_step_policies,
    ieee9_like,
    injection_shift_flows,
    pjm5bus,
    ring,
    two_zone,
)


class TestPtdfBasics:
    def test_two_bus_all_flow_on_single_line(self):
        grid = two_zone()
        ptdf = compute_ptdf(grid, slack="Y")
        # Inject at X, withdraw at Y: everything crosses X-Y.
        assert ptdf.factor("X-Y", "X") == pytest.approx(1.0)
        assert ptdf.factor("X-Y", "Y") == pytest.approx(0.0)  # slack column

    def test_slack_column_zero(self):
        ptdf = compute_ptdf(pjm5bus(), slack="A")
        col = ptdf.matrix[:, ptdf.bus_names.index("A")]
        assert np.allclose(col, 0.0)

    def test_unknown_slack_rejected(self):
        with pytest.raises(ValueError):
            compute_ptdf(pjm5bus(), slack="Z")

    def test_factors_bounded_by_one(self):
        ptdf = compute_ptdf(pjm5bus())
        assert np.all(np.abs(ptdf.matrix) <= 1.0 + 1e-9)

    def test_flows_for_injections_balanced(self):
        grid = pjm5bus()
        ptdf = compute_ptdf(grid, slack="E")
        flows = ptdf.flows_for_injections({"A": 100.0, "B": -100.0})
        # Flow conservation at a pass-through bus: net into C equals out.
        net_c = (
            flows["B-C"] - flows["C-D"]
        )  # B->C in, C->D out (orientation signs)
        assert net_c == pytest.approx(0.0, abs=1e-9)


class TestPtdfAgainstOpf:
    @pytest.mark.parametrize("total", [150.0, 450.0, 690.0])
    def test_matches_dispatched_flows_uncongested(self, total):
        grid = pjm5bus(ed_limit_mw=np.inf)
        res = DcOpf(grid).dispatch({b: total / 3 for b in ("B", "C", "D")})
        assert res.feasible
        flows = injection_shift_flows(
            grid,
            res.generation,
            {b: total / 3 for b in ("B", "C", "D")},
        )
        for key, mw in res.flows.items():
            assert flows[key] == pytest.approx(mw, abs=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_matches_on_random_rings(self, seed):
        grid = ring(6, seed=seed, limit_fraction=0.0)
        capacity = grid.total_generation_capacity
        loads = {f"N{i}": capacity * 0.05 for i in range(1, 6, 2)}
        res = DcOpf(grid).dispatch(loads)
        assert res.feasible
        flows = injection_shift_flows(grid, res.generation, loads)
        for key, mw in res.flows.items():
            assert flows[key] == pytest.approx(mw, abs=1e-6)


class TestCongestionExposure:
    def test_pjm_d_bus_loads_the_ed_line_hardest(self):
        # The paper: the Brighton-Sundance (D-E) congestion makes D the
        # priciest consumer bus. Demand at D must pull hardest on D-E.
        exposure = congestion_exposure(pjm5bus(), "D-E", slack="E")
        consumers = {b: abs(exposure[b]) for b in ("B", "C", "D")}
        assert max(consumers, key=consumers.get) == "D"

    def test_unknown_line_rejected(self):
        with pytest.raises(KeyError):
            congestion_exposure(pjm5bus(), "X-Y")


class TestTwoZone:
    def test_price_separation_at_tie_limit(self):
        grid = two_zone(tie_limit_mw=100.0)
        opf = DcOpf(grid)
        below = opf.dispatch({"Y": 80.0})
        assert below.lmp_at("Y") == pytest.approx(10.0)
        above = opf.dispatch({"Y": 150.0})
        assert above.lmp_at("X") == pytest.approx(10.0)
        assert above.lmp_at("Y") == pytest.approx(50.0)


class TestIeee9Like:
    def test_structure(self):
        grid = ieee9_like()
        assert grid.n_buses == 9
        assert len(grid.lines) == 9
        assert grid.total_generation_capacity == pytest.approx(820.0)

    def test_merit_order_at_low_load(self):
        res = DcOpf(ieee9_like()).dispatch({"B5": 50.0, "B6": 50.0, "B8": 50.0})
        assert res.feasible
        assert res.generation["G1"] == pytest.approx(150.0, abs=1e-6)

    def test_step_policy_derivation_on_second_grid(self):
        grid = ieee9_like()
        opf = DcOpf(grid)
        loads = np.arange(30.0, 781.0, 30.0)
        shares = {"B5": 1 / 3, "B6": 1 / 3, "B8": 1 / 3}
        sweep = opf.lmp_sweep(shares, loads)
        # Multi-level, non-decreasing LMP curve at every load bus.
        for bus, series in sweep.items():
            valid = series[~np.isnan(series)]
            assert valid.size > 5
            assert np.all(np.diff(valid) >= -1e-6)
            assert len(np.unique(np.round(valid, 3))) >= 2


class TestRing:
    def test_validation(self):
        with pytest.raises(ValueError):
            ring(2)

    def test_reproducible(self):
        a, b = ring(8, seed=5), ring(8, seed=5)
        assert [l.reactance for l in a.lines] == [l.reactance for l in b.lines]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=3, max_value=12), st.integers(min_value=0, max_value=99))
    def test_always_connected_and_dispatchable(self, n, seed):
        grid = ring(n, seed=seed, limit_fraction=0.0)
        res = DcOpf(grid).dispatch({grid.buses[1].name: 10.0})
        assert res.feasible
