"""Boundary exactness of the step-price lookup paths.

A load exactly on a breakpoint is the sharpest correctness edge of the
pricing layer: the right-open convention (``breakpoints[k-1] <= P <
breakpoints[k]``) says such a load already pays the *higher* level. The
scalar policy path, its vectorized sibling, :class:`StepCurve`, and the
batched :class:`CurveBank` must all agree there, bit for bit — one of
them flipping to left-closed would silently misprice every hour whose
dispatch lands on a step (which Cost Capping deliberately does).

Also pins the regeneration round trip: policies derived from an
``lmp_sweep`` re-enter the system through ordinary
``SteppedPricingPolicy`` construction (the ``paper_policy_dc1`` path)
and serialization without drifting.
"""

import numpy as np
import pytest

from repro.powermarket.closedloop import policies_from_sweep
from repro.powermarket.curves import CurveBank, StepCurve
from repro.powermarket.dcopf import DcOpf
from repro.powermarket.grids import two_zone
from repro.powermarket.pjm5bus import derive_step_policies
from repro.powermarket.pricing import (
    SteppedPricingPolicy,
    paper_policies,
    paper_policy_dc1,
)

EPS = 1e-9


def _regenerated():
    opf = DcOpf(two_zone())
    window = np.arange(20.0, 200.0, 5.0)
    return list(policies_from_sweep(opf, {"Y": 1.0}, window).values())


def _all_policies():
    return [*paper_policies(), paper_policy_dc1(), *_regenerated()]


@pytest.fixture(scope="module", params=range(5), ids=lambda i: f"policy{i}")
def policy(request):
    return _all_policies()[request.param]


class TestScalarBoundaries:
    def test_breakpoint_takes_upper_level(self, policy):
        for k, bp in enumerate(policy.breakpoints):
            assert policy.price(bp) == policy.prices[k + 1]
            assert policy.price(bp - EPS * bp) == policy.prices[k]
            assert policy.level_index(bp) == k + 1

    def test_price_array_agrees_at_breakpoints(self, policy):
        if not policy.breakpoints:
            pytest.skip("flat policy has no breakpoints")
        bps = np.asarray(policy.breakpoints)
        scalar = np.array([policy.price(b) for b in bps])
        assert np.array_equal(policy.price_array(bps), scalar)
        just_below = bps * (1 - EPS)
        scalar_below = np.array([policy.price(b) for b in just_below])
        assert np.array_equal(policy.price_array(just_below), scalar_below)


class TestVectorizedBoundaries:
    def test_step_curve_agrees_at_breakpoints(self, policy):
        curve = StepCurve.from_policy(policy)
        probes = np.asarray(
            [0.0, *policy.breakpoints, *(b * (1 - EPS) for b in policy.breakpoints)]
        )
        scalar = np.array([policy.price(p) for p in probes])
        assert np.array_equal(curve.price(probes), scalar)

    def test_curve_bank_agrees_at_breakpoints(self):
        policies = _all_policies()
        bank = CurveBank.from_policies(policies)
        width = max(len(p.breakpoints) for p in policies)
        # Probe every policy at every one of its own breakpoints (padding
        # rows with zeros, which both paths price at the base level).
        probes = np.zeros((len(policies), width))
        for i, p in enumerate(policies):
            probes[i, : len(p.breakpoints)] = p.breakpoints
        scalar = np.array(
            [[p.price(x) for x in row] for p, row in zip(policies, probes)]
        )
        assert np.array_equal(bank.price(probes), scalar)

    def test_curve_bank_padding_invisible(self):
        # A flat policy padded next to a 4-step one must keep returning
        # its single price even at the widest policy's breakpoints.
        flat = SteppedPricingPolicy("flat", (), (31.0,))
        wide = paper_policy_dc1()
        bank = CurveBank.from_policies([flat, wide])
        probes = np.array([wide.breakpoints, wide.breakpoints])
        assert np.array_equal(bank.price(probes)[0], np.full(4, 31.0))


class TestSweepRoundTrip:
    def test_regenerated_policy_reconstructs(self):
        for policy in _regenerated():
            rebuilt = SteppedPricingPolicy(
                policy.name, tuple(policy.breakpoints), tuple(policy.prices)
            )
            assert rebuilt == policy
            probes = np.asarray([0.0, *policy.breakpoints, 1e6])
            assert np.array_equal(
                rebuilt.price_array(probes), policy.price_array(probes)
            )

    def test_serialization_round_trip(self):
        for policy in _regenerated():
            again = SteppedPricingPolicy.from_dict(policy.to_dict())
            assert again == policy

    def test_derived_pjm_policies_match_paper_construction(self):
        derived = derive_step_policies(step_mw=10.0)
        b = derived["B"]
        # Same construction path as paper_policy_dc1: name, interior
        # breakpoints, one more price than breakpoints, right-open.
        paper = paper_policy_dc1()
        assert b.name == paper.name
        assert len(b.prices) == len(b.breakpoints) + 1
        for k, bp in enumerate(b.breakpoints):
            assert b.price(bp) == b.prices[k + 1]
        # Both step through the same first level price ($10 marginal).
        assert b.prices[0] == pytest.approx(paper.prices[0], abs=0.5)
