"""Unit + property tests for stepped pricing policies (`repro.powermarket.pricing`)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.powermarket import (
    PAPER_DC1_PRICES,
    SteppedPricingPolicy,
    flat_policy,
    paper_policies,
    paper_policy_dc1,
    scale_increments,
)


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SteppedPricingPolicy("p", (10.0,), (1.0, 2.0, 3.0))

    def test_unsorted_breakpoints_rejected(self):
        with pytest.raises(ValueError):
            SteppedPricingPolicy("p", (20.0, 10.0), (1.0, 2.0, 3.0))

    def test_nonpositive_breakpoint_rejected(self):
        with pytest.raises(ValueError):
            SteppedPricingPolicy("p", (0.0, 10.0), (1.0, 2.0, 3.0))

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            SteppedPricingPolicy("p", (10.0,), (-1.0, 2.0))

    def test_empty_prices_rejected(self):
        with pytest.raises(ValueError):
            SteppedPricingPolicy("p", (), ())


class TestEvaluation:
    def setup_method(self):
        self.pol = SteppedPricingPolicy("B", (100.0, 200.0), (10.0, 20.0, 30.0))

    def test_levels(self):
        assert self.pol.price(0.0) == 10.0
        assert self.pol.price(99.9) == 10.0
        assert self.pol.price(100.0) == 20.0  # right-open intervals
        assert self.pol.price(150.0) == 20.0
        assert self.pol.price(200.0) == 30.0
        assert self.pol.price(1e9) == 30.0

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            self.pol.price(-1.0)
        with pytest.raises(ValueError):
            self.pol.price_array(np.array([1.0, -2.0]))

    def test_price_array_matches_scalar(self):
        loads = np.array([0.0, 50.0, 100.0, 199.0, 200.0, 400.0])
        arr = self.pol.price_array(loads)
        assert arr.tolist() == [self.pol.price(x) for x in loads]

    def test_segment_bounds(self):
        bounds = self.pol.segment_bounds()
        assert bounds == [(0.0, 100.0), (100.0, 200.0), (200.0, float("inf"))]

    def test_statistics(self):
        assert self.pol.average_price == pytest.approx(20.0)
        assert self.pol.lowest_price == pytest.approx(10.0)
        assert not self.pol.is_flat()
        assert flat_policy("f", 12.0).is_flat()


class TestPaperPolicies:
    def test_dc1_prices_match_section_vii(self):
        pol = paper_policy_dc1()
        assert pol.prices == PAPER_DC1_PRICES
        # Min-Only (Avg) constant quoted in the paper: 16.98 $/MWh.
        assert pol.average_price == pytest.approx(16.98)
        # Min-Only (Low): 10.00 $/MWh.
        assert pol.lowest_price == pytest.approx(10.00)

    def test_policy2_doubles_increments(self):
        pol2 = scale_increments(paper_policy_dc1(), 2.0)
        assert pol2.prices == pytest.approx((10.00, 17.80, 20.00, 34.00, 38.00))

    def test_policy3_triples_increments(self):
        pol3 = scale_increments(paper_policy_dc1(), 3.0)
        assert pol3.prices == pytest.approx((10.00, 21.70, 25.00, 46.00, 52.00))

    def test_factor_zero_is_flat(self):
        pol0 = scale_increments(paper_policy_dc1(), 0.0)
        assert pol0.is_flat()
        assert pol0.prices[0] == pytest.approx(10.0)

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            scale_increments(paper_policy_dc1(), -1.0)

    def test_three_locations(self):
        pols = paper_policies()
        assert [p.name for p in pols] == ["B", "C", "D"]
        for p in pols:
            assert p.n_levels == 5
            assert p.prices[0] == pytest.approx(10.0)  # Brighton sets the floor

    def test_scale_preserves_breakpoints(self):
        pol = paper_policy_dc1()
        assert scale_increments(pol, 2.0).breakpoints == pol.breakpoints


@st.composite
def policies(draw):
    n_levels = draw(st.integers(min_value=1, max_value=6))
    bp = sorted(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=1000.0),
                min_size=n_levels - 1,
                max_size=n_levels - 1,
                unique=True,
            )
        )
    )
    prices = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=500.0),
                min_size=n_levels,
                max_size=n_levels,
            )
        )
    )
    # Realistic LMP step curves are non-decreasing in load, which also
    # keeps increment scaling non-negative.
    return SteppedPricingPolicy("h", tuple(bp), tuple(prices))


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(policies(), st.floats(min_value=0.0, max_value=2000.0))
    def test_price_is_one_of_levels(self, pol, load):
        assert pol.price(load) in pol.prices

    @settings(max_examples=80, deadline=None)
    @given(policies(), st.floats(min_value=0.0, max_value=2000.0))
    def test_level_index_consistent_with_segment_bounds(self, pol, load):
        k = pol.level_index(load)
        lo, hi = pol.segment_bounds()[k]
        assert lo <= load < hi

    @settings(max_examples=50, deadline=None)
    @given(policies(), st.floats(min_value=1.0, max_value=3.0))
    def test_scaling_preserves_ordering(self, pol, factor):
        scaled = scale_increments(pol, factor)
        base = pol.prices[0]
        for orig, new in zip(pol.prices, scaled.prices):
            assert new == pytest.approx(base + factor * (orig - base))

    @settings(max_examples=50, deadline=None)
    @given(policies())
    def test_bounds_partition_the_load_axis(self, pol):
        bounds = pol.segment_bounds()
        assert bounds[0][0] == 0.0
        assert bounds[-1][1] == float("inf")
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
