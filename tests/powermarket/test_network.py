"""Unit tests for the grid data model (`repro.powermarket.network`)."""

import pytest

from repro.powermarket import Bus, Generator, Grid, Line, pjm5bus


def _tiny_grid(**overrides):
    kwargs = dict(
        buses=[Bus("X"), Bus("Y")],
        lines=[Line("X", "Y", reactance=0.1)],
        generators=[Generator("G", "X", max_mw=100.0, cost=10.0)],
    )
    kwargs.update(overrides)
    return Grid(**kwargs)


class TestValidation:
    def test_valid_grid_builds(self):
        g = _tiny_grid()
        assert g.n_buses == 2

    def test_duplicate_bus_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate bus"):
            _tiny_grid(buses=[Bus("X"), Bus("X")])

    def test_unknown_line_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown bus"):
            _tiny_grid(lines=[Line("X", "Z", reactance=0.1)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            _tiny_grid(lines=[Line("X", "X", reactance=0.1)])

    def test_unknown_generator_bus_rejected(self):
        with pytest.raises(ValueError, match="unknown bus"):
            _tiny_grid(generators=[Generator("G", "Q", max_mw=1.0, cost=1.0)])

    def test_duplicate_generator_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate generator"):
            _tiny_grid(
                generators=[
                    Generator("G", "X", max_mw=1.0, cost=1.0),
                    Generator("G", "Y", max_mw=1.0, cost=1.0),
                ]
            )

    def test_disconnected_grid_rejected(self):
        with pytest.raises(ValueError, match="not connected"):
            Grid(
                buses=[Bus("X"), Bus("Y"), Bus("Z")],
                lines=[Line("X", "Y", reactance=0.1)],
                generators=[Generator("G", "X", max_mw=1.0, cost=1.0)],
            )

    def test_nonpositive_reactance_rejected(self):
        with pytest.raises(ValueError, match="reactance"):
            Line("X", "Y", reactance=0.0)

    def test_negative_gen_limits_rejected(self):
        with pytest.raises(ValueError):
            Generator("G", "X", max_mw=1.0, cost=1.0, min_mw=-1.0)
        with pytest.raises(ValueError):
            Generator("G", "X", max_mw=1.0, cost=1.0, min_mw=2.0)


class TestQueries:
    def test_bus_index(self):
        g = _tiny_grid()
        assert g.bus_index("X") == 0
        assert g.bus_index("Y") == 1

    def test_generators_at(self):
        g = pjm5bus()
        names = {gen.name for gen in g.generators_at("A")}
        assert names == {"Alta", "ParkCity"}
        assert g.generators_at("B") == []

    def test_total_capacity(self):
        assert pjm5bus().total_generation_capacity == pytest.approx(1530.0)

    def test_line_susceptance(self):
        assert Line("X", "Y", reactance=0.25).susceptance == pytest.approx(4.0)


class TestNetworkxExport:
    def test_topology(self):
        g = pjm5bus().to_networkx()
        assert set(g.nodes) == {"A", "B", "C", "D", "E"}
        assert g.number_of_edges() == 6
        assert g.edges[("D", "E")]["limit_mw"] == pytest.approx(240.0)

    def test_node_attributes(self):
        g = pjm5bus().to_networkx()
        assert g.nodes["A"]["gen_capacity_mw"] == pytest.approx(210.0)
        assert g.nodes["A"]["min_gen_cost"] == pytest.approx(14.0)
        assert g.nodes["B"]["min_gen_cost"] is None
