"""Tests for the energy/congestion LMP decomposition."""

import numpy as np
import pytest

from repro.powermarket import (
    DcOpf,
    decompose_lmp,
    ieee9_like,
    pjm5bus,
    two_zone,
)


class TestUncongested:
    def test_pure_energy_price(self):
        d = decompose_lmp(pjm5bus(), {b: 100.0 for b in ("B", "C", "D")})
        assert d.energy == pytest.approx(10.0)
        assert not d.congested
        for bus, comp in d.congestion.items():
            assert comp == pytest.approx(0.0, abs=1e-9)

    def test_infinite_limit_grid_never_congested(self):
        grid = pjm5bus(ed_limit_mw=np.inf)
        d = decompose_lmp(grid, {b: 800.0 / 3 for b in ("B", "C", "D")})
        assert not d.congested


class TestCongested:
    @pytest.fixture(scope="class")
    def decomp(self):
        return decompose_lmp(pjm5bus(), {b: 800.0 / 3 for b in ("B", "C", "D")})

    def test_identity_holds(self, decomp):
        for bus in ("A", "B", "C", "D", "E"):
            e, c, t = decomp.at(bus)
            assert e + c == pytest.approx(t, rel=1e-6)

    def test_matches_direct_opf(self, decomp):
        res = DcOpf(pjm5bus()).dispatch({b: 800.0 / 3 for b in ("B", "C", "D")})
        for bus in ("B", "C", "D"):
            assert decomp.lmp[bus] == pytest.approx(res.lmp_at(bus), abs=1e-6)

    def test_consumer_congestion_positive_supplier_negative(self, decomp):
        # Import-constrained consumers pay a congestion premium; the
        # exporter behind the constraint (Brighton's bus E) is paid less.
        assert decomp.congestion["D"] > 5.0
        assert decomp.congestion["E"] < -1.0
        assert decomp.congested

    def test_slack_bus_congestion_is_zero(self, decomp):
        # Components are relative to the reference bus (default: A).
        assert decomp.congestion["A"] == pytest.approx(0.0, abs=1e-9)

    def test_ordering_mirrors_exposure(self, decomp):
        # D pulls the congested line hardest, so its premium is largest.
        assert (
            decomp.congestion["D"]
            > decomp.congestion["C"]
            > decomp.congestion["B"]
        )


class TestOtherGrids:
    def test_two_zone_congestion_premium(self):
        grid = two_zone(tie_limit_mw=100.0)
        d = decompose_lmp(grid, {"Y": 150.0}, slack="X")
        assert d.energy == pytest.approx(10.0)
        assert d.congestion["Y"] == pytest.approx(40.0)  # 50 - 10
        assert d.lmp["Y"] == pytest.approx(50.0)

    def test_ieee9_identity(self):
        grid = ieee9_like()
        d = decompose_lmp(grid, {"B5": 180.0, "B6": 180.0, "B8": 180.0})
        for bus, total in d.lmp.items():
            assert d.energy + d.congestion[bus] == pytest.approx(total, rel=1e-6)

    def test_infeasible_rejected(self):
        with pytest.raises(ValueError, match="infeasible"):
            decompose_lmp(pjm5bus(), {"B": 10_000.0})
