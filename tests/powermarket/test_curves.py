"""Vectorized step-price curves must match the scalar policy exactly.

:class:`StepCurve` and :class:`CurveBank` are pure evaluation-layer
rewrites of :meth:`SteppedPricingPolicy.price`; any divergence —
especially at loads exactly on a breakpoint, where the right-open
convention decides the level — would silently change every bill the
simulator computes. Property tests drive randomized policies and loads
(with breakpoints themselves injected as loads) through both paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.powermarket import SteppedPricingPolicy, StepCurve, CurveBank, paper_policies


@st.composite
def policies(draw, name="h"):
    n_levels = draw(st.integers(min_value=1, max_value=6))
    bp = sorted(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=1000.0),
                min_size=n_levels - 1,
                max_size=n_levels - 1,
                unique=True,
            )
        )
    )
    prices = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=500.0),
                min_size=n_levels,
                max_size=n_levels,
            )
        )
    )
    return SteppedPricingPolicy(name, tuple(bp), tuple(prices))


@st.composite
def loads_for(draw, policy, max_extra=8):
    """Loads mixing ordinary draws with the policy's own breakpoints."""
    loads = list(policy.breakpoints)
    loads += draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2000.0),
            min_size=1,
            max_size=max_extra,
        )
    )
    return np.array(loads)


class TestStepCurve:
    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_matches_scalar_policy(self, data):
        pol = data.draw(policies())
        loads = data.draw(loads_for(pol))
        curve = StepCurve.from_policy(pol)
        expected = np.array([pol.price(x) for x in loads])
        assert np.array_equal(curve.price(loads), expected)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_level_matches_scalar_index(self, data):
        pol = data.draw(policies())
        loads = data.draw(loads_for(pol))
        curve = StepCurve.from_policy(pol)
        expected = np.array([pol.level_index(x) for x in loads])
        assert np.array_equal(curve.level(loads), expected)

    def test_on_breakpoint_is_right_open(self):
        pol = SteppedPricingPolicy("B", (100.0, 200.0), (10.0, 20.0, 30.0))
        curve = StepCurve.from_policy(pol)
        assert curve.price(np.array([100.0, 200.0])).tolist() == [20.0, 30.0]
        # Just below the breakpoint stays on the cheaper level.
        below = np.nextafter(100.0, 0.0)
        assert curve.price(np.array([below]))[0] == 10.0

    def test_preserves_input_shape(self):
        curve = StepCurve("f", (10.0,), (1.0, 2.0))
        grid = np.array([[0.0, 10.0], [20.0, 5.0]])
        assert curve.price(grid).shape == grid.shape

    def test_negative_load_rejected(self):
        curve = StepCurve("f", (10.0,), (1.0, 2.0))
        with pytest.raises(ValueError):
            curve.price(np.array([1.0, -2.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StepCurve("f", (10.0, 20.0), (1.0, 2.0))


class TestCurveBank:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_matches_scalar_per_site(self, data):
        pols = [
            data.draw(policies(name=f"s{i}"))
            for i in range(data.draw(st.integers(min_value=1, max_value=5)))
        ]
        bank = CurveBank.from_policies(pols)
        # Uniform grid of candidate loads per site, plus every site's
        # own breakpoints (padded rows must not perturb neighbours).
        width = max(len(p.breakpoints) for p in pols) + 3
        grid = np.zeros((len(pols), width))
        for i, p in enumerate(pols):
            row = list(p.breakpoints) + [0.0, 123.456, 1999.0]
            grid[i] = (row + [0.0] * width)[:width]
        expected = np.array(
            [[p.price(x) for x in grid[i]] for i, p in enumerate(pols)]
        )
        assert np.array_equal(bank.price(grid), expected)
        # 1-D form: one load per site.
        one = grid[:, 0]
        assert np.array_equal(
            bank.price(one), np.array([p.price(x) for p, x in zip(pols, one)])
        )

    def test_paper_policies_grid(self):
        pols = paper_policies()
        bank = CurveBank.from_policies(pols)
        loads = np.linspace(0.0, 500.0, 101)
        grid = np.tile(loads, (len(pols), 1))
        expected = np.array([[p.price(x) for x in loads] for p in pols])
        assert np.array_equal(bank.price(grid), expected)

    def test_site_price_adds_background(self):
        pols = paper_policies()
        bank = CurveBank.from_policies(pols)
        dc = np.array([10.0, 20.0, 30.0])
        bg = np.array([90.0, 60.0, 170.0])
        expected = np.array(
            [p.price(d + b) for p, d, b in zip(pols, dc, bg)]
        )
        assert np.array_equal(bank.site_price(dc, bg), expected)
        # Candidate grids broadcast the background down the trailing axis.
        cand = np.stack([dc, dc * 2.0], axis=1)
        out = bank.site_price(cand, bg)
        assert out.shape == cand.shape
        expected2 = np.array(
            [[p.price(c + b) for c in row]
             for p, row, b in zip(pols, cand, bg)]
        )
        assert np.array_equal(out, expected2)

    def test_wrong_leading_dimension_rejected(self):
        bank = CurveBank.from_policies(paper_policies())
        with pytest.raises(ValueError):
            bank.price(np.zeros(2))

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            CurveBank([])
