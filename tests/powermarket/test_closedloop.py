"""Closed-loop co-simulation: grid registry, coupling, fixed point.

The acceptance pair at the heart of the module: an undamped
best-response dynamic oscillates across a congestion step (period-2
cycle, detected and counted), while the damped iteration on the same
scenario converges. Plus the supporting machinery — grid registry,
N-1 line outages, policy regeneration from sweeps, renewable-shaped
background demand.
"""

import numpy as np
import pytest

from repro.powermarket.closedloop import (
    ClosedLoopConfig,
    EndogenousPricer,
    MarketCoupling,
    available_grids,
    get_grid,
    line_outage,
    policies_from_sweep,
    register_grid,
)
from repro.powermarket.dcopf import DcOpf
from repro.powermarket.demand import renewable_background
from repro.powermarket.grids import two_zone
from repro.powermarket.network import Grid
from repro.powermarket.pjm5bus import pjm5bus
from repro.telemetry import Telemetry, use_telemetry


# -- grid registry -----------------------------------------------------------


class TestGridRegistry:
    def test_builtins_registered(self):
        assert {"pjm5bus", "two-zone", "ieee9"} <= set(available_grids())

    def test_get_by_name(self):
        grid = get_grid("two-zone")
        assert {b.name for b in grid.buses} == {"X", "Y"}

    def test_passthrough(self):
        grid = two_zone()
        assert get_grid(grid) is grid

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="pjm5bus"):
            get_grid("no-such-grid")

    def test_register_and_replace_guard(self):
        register_grid("test-tz", two_zone, replace=True)
        assert "test-tz" in available_grids()
        with pytest.raises(ValueError, match="already registered"):
            register_grid("test-tz", two_zone)
        register_grid("test-tz", two_zone, replace=True)

    def test_register_rejects_non_callable(self):
        with pytest.raises(TypeError):
            register_grid("bad", two_zone(), replace=True)


class TestLineOutage:
    def test_removes_line(self):
        grid = get_grid("pjm5bus", mutate=line_outage("D-E"))
        assert "D-E" not in {l.key for l in grid.lines}
        assert len(grid.lines) == len(pjm5bus().lines) - 1

    def test_unknown_key_lists_lines(self):
        with pytest.raises(KeyError, match="X-Y"):
            line_outage("nope")(two_zone())

    def test_islanding_rejected(self):
        # Two-zone has one line; dropping it islands bus Y.
        with pytest.raises(ValueError):
            line_outage("X-Y")(two_zone())

    def test_outage_changes_prices(self):
        opf_base = DcOpf(pjm5bus())
        opf_out = DcOpf(get_grid("pjm5bus", mutate=line_outage("D-E")))
        loads = {"B": 250.0, "C": 250.0, "D": 250.0}
        base = opf_base.dispatch(loads)
        out = opf_out.dispatch(loads)
        assert base.feasible and out.feasible
        assert any(
            abs(base.lmp_at(b) - out.lmp_at(b)) > 1e-6 for b in ("B", "C", "D")
        )


# -- coupling ----------------------------------------------------------------


class TestMarketCoupling:
    def test_unknown_bus_rejected(self):
        with pytest.raises(ValueError, match="unknown bus"):
            MarketCoupling(grid=two_zone(), site_buses={"DC": "Z"})

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one site"):
            MarketCoupling(grid=two_zone(), site_buses={})

    def test_buses_in_grid_order(self):
        coupling = MarketCoupling(
            grid=pjm5bus(), site_buses={"s1": "D", "s2": "B", "s3": "D"}
        )
        assert coupling.buses == ("B", "D")

    def test_infer_from_policy_regions(self):
        from repro.experiments import paper_world

        world = paper_world(1, seed=7)
        coupling = MarketCoupling.infer(world.sites, "pjm5bus")
        assert coupling.site_buses == {"DC1": "B", "DC2": "C", "DC3": "D"}

    def test_infer_unmappable_site_errors(self):
        from repro.experiments import paper_world

        world = paper_world(1, seed=7)
        with pytest.raises(ValueError, match="site_buses"):
            MarketCoupling.infer(world.sites, "two-zone")


# -- configuration -----------------------------------------------------------


class TestClosedLoopConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"damping": 0.0},
            {"damping": 1.5},
            {"acceleration": "newton"},
            {"max_iterations": 1},
            {"tol_lmp": 0.0},
            {"sweep_step_mw": -1.0},
            {"operators": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ClosedLoopConfig(**kwargs)

    def test_defaults_valid(self):
        cfg = ClosedLoopConfig()
        assert cfg.damping == 0.5 and cfg.max_iterations >= 2


# -- policy regeneration -----------------------------------------------------


class TestPoliciesFromSweep:
    def test_two_zone_congestion_step(self):
        opf = DcOpf(two_zone())
        window = np.arange(20.0, 200.0, 5.0)
        out = policies_from_sweep(opf, {"Y": 1.0}, window)
        policy = out["Y"]
        # Below the 100 MW tie limit Y clears cheap; beyond, local cost.
        assert policy.price(50.0) == pytest.approx(10.0)
        assert policy.price(180.0) == pytest.approx(50.0)
        assert len(policy.prices) >= 2

    def test_zero_share_bus_gets_flat_fallback(self):
        opf = DcOpf(two_zone())
        window = np.arange(20.0, 120.0, 5.0)
        out = policies_from_sweep(
            opf, {"Y": 1.0, "X": 0.0}, window, fallback_lmp={"X": 12.5}
        )
        assert out["X"].is_flat()
        assert out["X"].price(0.0) == pytest.approx(12.5)

    def test_locational_breakpoints_scale_with_share(self):
        opf = DcOpf(pjm5bus())
        window = np.arange(100.0, 800.0, 10.0)
        thirds = policies_from_sweep(
            opf, {"B": 1 / 3, "C": 1 / 3, "D": 1 / 3}, window
        )
        for policy in thirds.values():
            # Interior breakpoints are share x system breakpoints, so the
            # largest must sit inside a third of the swept window.
            if policy.breakpoints:
                assert max(policy.breakpoints) <= window[-1] / 3 + 1e-9


# -- the fixed point ---------------------------------------------------------


def _pricer(config: ClosedLoopConfig) -> EndogenousPricer:
    coupling = MarketCoupling(grid=two_zone(), site_buses={"DC": "Y"})
    return EndogenousPricer(coupling, config)


def _spot_taker(policies, injections, rivals):
    """A price-taking best responder: reads the spot price at its
    *current* operating point and bangs between full load and minimum.
    This is the dynamic that genuinely cycles across a congestion step —
    a curve-aware dispatcher would see the step coming and stabilize.
    """
    price = policies["Y"].price(60.0 + injections["DC"] + rivals.get("DC", 0.0))
    return {"DC": 10.0 if price > 20.0 else 120.0}


class TestFixedPoint:
    def test_undamped_best_response_oscillates(self):
        tel = Telemetry()
        with use_telemetry(tel):
            pricer = _pricer(
                ClosedLoopConfig(damping=1.0, max_iterations=8)
            )
            result = pricer.solve_hour({"DC": 60.0}, {"DC": 120.0}, _spot_taker)
        assert not result.converged
        assert result.oscillated
        assert result.fallback
        assert result.iterations == 8
        # Period-2 LMP cycle at bus Y: 50, 10, 50, 10, ...
        ys = [h["Y"] for h in result.lmp_history]
        assert ys[0] == pytest.approx(50.0)
        assert ys[1] == pytest.approx(10.0)
        assert ys[2] == pytest.approx(ys[0]) and ys[3] == pytest.approx(ys[1])
        assert tel.registry.get("closedloop.oscillated").value == 1
        assert tel.registry.get("closedloop.fallback").value == 1
        assert tel.registry.get("closedloop.converged") is None

    def test_damping_converges_same_scenario(self):
        tel = Telemetry()
        with use_telemetry(tel):
            pricer = _pricer(
                ClosedLoopConfig(damping=0.5, max_iterations=8)
            )
            result = pricer.solve_hour({"DC": 60.0}, {"DC": 120.0}, _spot_taker)
        assert result.converged
        assert not result.fallback
        assert result.iterations <= 8
        # Converged means the last two OPF clears priced identically.
        assert pricer._delta(result.lmp_history[-1], result.lmp_history[-2]) < (
            pricer.config.tol_lmp
        )
        assert tel.registry.get("closedloop.converged").value == 1

    def test_anderson_converges_same_scenario(self):
        pricer = _pricer(
            ClosedLoopConfig(
                damping=0.5, acceleration="anderson", max_iterations=8
            )
        )
        result = pricer.solve_hour({"DC": 60.0}, {"DC": 120.0}, _spot_taker)
        assert result.converged and not result.fallback

    def test_fixed_point_needs_two_clears_minimum(self):
        pricer = _pricer(ClosedLoopConfig())

        def steady(policies, injections, rivals):
            return {"DC": 30.0}

        result = pricer.solve_hour({"DC": 10.0}, {"DC": 30.0}, steady)
        assert result.converged
        assert result.iterations == 2

    def test_infeasible_operating_point_falls_back(self):
        # Load beyond total generation: the OPF cannot clear.
        tel = Telemetry()
        with use_telemetry(tel):
            pricer = _pricer(ClosedLoopConfig())
            result = pricer.solve_hour(
                {"DC": 5000.0},
                {"DC": 0.0},
                lambda policies, injections, rivals: {"DC": 0.0},
            )
        assert result.fallback and not result.converged
        assert result.iterations == 1
        assert tel.registry.get("closedloop.fallback").value == 1

    def test_multi_operator_amplifies_nodal_load(self):
        one = _pricer(ClosedLoopConfig(operators=1))
        three = _pricer(ClosedLoopConfig(operators=3))
        bg, inj = {"DC": 10.0}, {"DC": 25.0}
        assert one.nodal_loads(bg, inj)["Y"] == pytest.approx(35.0)
        assert three.nodal_loads(bg, inj)["Y"] == pytest.approx(85.0)

    def test_rivals_passed_to_redispatch(self):
        pricer = _pricer(ClosedLoopConfig(operators=3, max_iterations=3))
        seen = []

        def responder(policies, injections, rivals):
            seen.append(dict(rivals))
            return {"DC": 20.0}

        pricer.solve_hour({"DC": 10.0}, {"DC": 20.0}, responder)
        assert seen and seen[0]["DC"] == pytest.approx(2 * 20.0)


# -- renewable background ----------------------------------------------------


class TestRenewableBackground:
    def test_duck_curve_shape(self):
        net = renewable_background(48, 100.0, seed=3)
        assert net.shape == (48,)
        assert np.all(net >= 0.0)
        # Solar depresses midday below the evening ramp (duck curve).
        assert net[12] < net[19]

    def test_deterministic_in_seed(self):
        a = renewable_background(72, 80.0, seed=11)
        b = renewable_background(72, 80.0, seed=11)
        c = renewable_background(72, 80.0, seed=12)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_zero_fraction_matches_gross(self):
        from repro.powermarket.demand import reco_like_background

        gross = reco_like_background(24, 100.0, seed=5)
        net = renewable_background(24, 100.0, renewable_fraction=0.0, seed=5)
        assert np.allclose(net, gross)
