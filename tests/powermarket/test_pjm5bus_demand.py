"""Tests for the 5-bus policy derivation and synthetic background demand."""

import numpy as np
import pytest

from repro.powermarket import (
    SteppedPricingPolicy,
    background_for_policy,
    derive_step_policies,
    flat_policy,
    pjm5bus,
    reco_like_background,
)


class TestDeriveStepPolicies:
    @pytest.fixture(scope="class")
    def policies(self):
        return derive_step_policies(step_mw=5.0)

    def test_all_load_buses_present(self, policies):
        assert set(policies) == {"B", "C", "D"}

    def test_base_price_is_brighton(self, policies):
        for pol in policies.values():
            assert pol.prices[0] == pytest.approx(10.0)

    def test_first_step_near_brighton_limit(self, policies):
        # Brighton (600 MW) exhausts at a locational load of ~200 MW.
        for pol in policies.values():
            assert pol.breakpoints[0] == pytest.approx(200.0, abs=5.0)

    def test_congestion_step_near_711mw_system(self, policies):
        # The E-D line limit binds near 711.8 MW system load (~237 locational).
        for pol in policies.values():
            assert pol.breakpoints[-1] == pytest.approx(237.3, abs=5.0)

    def test_congested_prices_ordered_d_highest(self, policies):
        # Bus D imports across the congested line: highest final price.
        finals = {bus: pol.prices[-1] for bus, pol in policies.items()}
        assert finals["D"] == max(finals.values())
        assert finals["D"] == pytest.approx(30.0, abs=0.5)

    def test_prices_nondecreasing(self, policies):
        for pol in policies.values():
            assert list(pol.prices) == sorted(pol.prices)

    def test_system_load_units_option(self):
        pols = derive_step_policies(step_mw=10.0, locational=False)
        # In system-load units the first breakpoint sits near 600 MW.
        assert pols["B"].breakpoints[0] == pytest.approx(600.0, abs=15.0)

    def test_uncongested_grid_yields_uniform_levels(self):
        pols = derive_step_policies(pjm5bus(ed_limit_mw=np.inf), step_mw=10.0)
        prices = {p.prices for p in pols.values()}
        assert len(prices) == 1  # identical everywhere without congestion

    def test_refined_breakpoints_hit_canonical_loads(self):
        # Bisection pins the steps to the physical limits: Brighton's
        # 600 MW exactly, and the Brighton-Sundance line congestion at
        # ~710 MW with our transcription of the 5-bus data (Li & Bo's
        # exact parameters put it at 711.81 MW — same constraint, a
        # fraction of a percent apart).
        pols = derive_step_policies(
            step_mw=10.0, locational=False, refine_tol_mw=0.05
        )
        b = pols["B"]
        assert b.breakpoints[0] == pytest.approx(600.0, abs=0.1)
        assert b.breakpoints[-1] == pytest.approx(711.8, rel=0.01)

    def test_refined_matches_coarse_prices(self):
        coarse = derive_step_policies(step_mw=10.0)
        fine = derive_step_policies(step_mw=10.0, refine_tol_mw=0.1)
        for bus in coarse:
            assert coarse[bus].prices == fine[bus].prices
            for bc, bf in zip(coarse[bus].breakpoints, fine[bus].breakpoints):
                assert abs(bc - bf) <= 10.0 / 3 + 1e-6  # within one sweep step


class TestBackgroundDemand:
    def test_length_and_nonnegative(self):
        d = reco_like_background(24 * 14, peak_mw=200.0, seed=3)
        assert d.shape == (24 * 14,)
        assert np.all(d >= 0.0)

    def test_reproducible(self):
        a = reco_like_background(100, 150.0, seed=42)
        b = reco_like_background(100, 150.0, seed=42)
        assert np.array_equal(a, b)

    def test_seed_changes_trace(self):
        a = reco_like_background(100, 150.0, seed=1)
        b = reco_like_background(100, 150.0, seed=2)
        assert not np.array_equal(a, b)

    def test_diurnal_shape(self):
        d = reco_like_background(24 * 7, 100.0, seed=0, noise=0.0)
        day = d[:24]
        assert day.argmin() in range(2, 7)  # overnight trough
        assert day.argmax() in range(14, 19)  # afternoon peak

    def test_weekend_dip(self):
        d = reco_like_background(24 * 7, 100.0, seed=0, noise=0.0, start_weekday=0)
        weekday_mean = d[: 24 * 5].mean()
        weekend_mean = d[24 * 5 :].mean()
        assert weekend_mean < weekday_mean

    def test_validation(self):
        with pytest.raises(ValueError):
            reco_like_background(0, 100.0)
        with pytest.raises(ValueError):
            reco_like_background(10, -5.0)

    def test_calibration_against_policy(self):
        pol = SteppedPricingPolicy("B", (100.0, 200.0), (10.0, 20.0, 30.0))
        d = background_for_policy(pol, 24 * 7, seed=0)
        # Peak anchored below the *first* breakpoint: the background
        # alone stays in the cheapest level (price-maker regime).
        assert d.max() <= pol.breakpoints[0] * 1.05
        assert d.max() >= pol.breakpoints[0] * 0.5

    def test_peak_override(self):
        pol = SteppedPricingPolicy("B", (100.0, 200.0), (10.0, 20.0, 30.0))
        d = background_for_policy(pol, 48, peak_mw=150.0, seed=0, )
        assert d.max() == pytest.approx(150.0, rel=0.15)

    def test_flat_policy_gets_generic_level(self):
        d = background_for_policy(flat_policy("f", 15.0), 48, seed=0)
        assert d.max() > 0.0
