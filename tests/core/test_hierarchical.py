"""Tests for the hierarchical dispatcher and bill capper (Section IX)."""

import numpy as np
import pytest

from repro.core import (
    CappingStep,
    CostMinimizer,
    HierarchicalBillCapper,
    HierarchicalDispatcher,
    Region,
)
from repro.solver import InfeasibleError

from .conftest import site_hour


@pytest.fixture
def two_regions(three_sites):
    extra = site_hour("D", slope=0.45e-6, background=20.0)
    return [
        Region("east", tuple(three_sites[:2])),
        Region("west", (three_sites[2], extra)),
    ]


class TestRegion:
    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            Region("empty", ())

    def test_capacity(self, three_sites):
        r = Region("r", tuple(three_sites))
        assert r.capacity_rps == pytest.approx(sum(s.max_rate_rps for s in three_sites))


class TestBids:
    def test_bid_shape(self, two_regions):
        disp = HierarchicalDispatcher(samples_per_region=5)
        bid = disp.bid(two_regions[0])
        assert bid.rates.shape == (5,)
        assert bid.rates[0] == 0.0
        assert bid.rates[-1] == pytest.approx(two_regions[0].capacity_rps)
        assert bid.costs[0] == pytest.approx(0.0)
        # Costs non-decreasing in load.
        assert np.all(np.diff(bid.costs) >= -1e-6)

    def test_sample_count_validated(self):
        with pytest.raises(ValueError):
            HierarchicalDispatcher(samples_per_region=1)


class TestDispatch:
    def test_serves_everything(self, two_regions):
        disp = HierarchicalDispatcher(samples_per_region=6)
        capacity = sum(r.capacity_rps for r in two_regions)
        lam = 0.4 * capacity
        d = disp.solve(two_regions, lam)
        assert sum(a.rate_rps for a in d.allocations) == pytest.approx(lam, rel=1e-3)

    def test_near_centralized_optimum(self, two_regions):
        disp = HierarchicalDispatcher(samples_per_region=10)
        all_sites = [s for r in two_regions for s in r.sites]
        lam = 0.4 * sum(s.max_rate_rps for s in all_sites)
        hier = disp.solve(two_regions, lam)
        central = CostMinimizer().solve(all_sites, lam)
        # Hierarchical can only be >= centralized; within 10% here.
        assert hier.predicted_cost >= central.predicted_cost * (1 - 1e-6)
        assert hier.predicted_cost <= central.predicted_cost * 1.10

    def test_beyond_capacity_infeasible(self, two_regions):
        disp = HierarchicalDispatcher()
        capacity = sum(r.capacity_rps for r in two_regions)
        with pytest.raises(InfeasibleError):
            disp.solve(two_regions, capacity * 1.1)

    def test_zero_load(self, two_regions):
        d = HierarchicalDispatcher().solve(two_regions, 0.0)
        assert d.predicted_cost == pytest.approx(0.0, abs=1e-6)

    def test_negative_load_rejected(self, two_regions):
        with pytest.raises(ValueError):
            HierarchicalDispatcher().solve(two_regions, -1.0)


class TestHierarchicalCapper:
    def _costs(self, two_regions, lam):
        all_sites = [s for r in two_regions for s in r.sites]
        return CostMinimizer().solve(all_sites, lam).predicted_cost

    def test_abundant_budget(self, two_regions):
        capper = HierarchicalBillCapper(
            dispatcher=HierarchicalDispatcher(samples_per_region=6)
        )
        capacity = sum(r.capacity_rps for r in two_regions)
        prem, ordi = 0.3 * capacity, 0.1 * capacity
        budget = self._costs(two_regions, prem + ordi) * 3.0
        d = capper.decide(two_regions, prem, ordi, budget)
        assert d.step is CappingStep.COST_MIN
        assert d.premium_fully_served
        assert d.ordinary_admission_rate == pytest.approx(1.0)

    def test_tight_budget_throttles_ordinary(self, two_regions):
        capper = HierarchicalBillCapper(
            dispatcher=HierarchicalDispatcher(samples_per_region=6)
        )
        capacity = sum(r.capacity_rps for r in two_regions)
        prem, ordi = 0.3 * capacity, 0.3 * capacity
        full = self._costs(two_regions, prem + ordi)
        prem_cost = self._costs(two_regions, prem)
        budget = (full + prem_cost) / 2
        d = capper.decide(two_regions, prem, ordi, budget)
        assert d.step is CappingStep.THROUGHPUT_MAX
        assert d.premium_fully_served
        assert 0.0 < d.ordinary_admission_rate < 1.0
        assert d.predicted_cost <= budget * (1 + 1e-6)

    def test_insufficient_budget_premium_only(self, two_regions):
        capper = HierarchicalBillCapper(
            dispatcher=HierarchicalDispatcher(samples_per_region=6)
        )
        capacity = sum(r.capacity_rps for r in two_regions)
        prem = 0.4 * capacity
        budget = self._costs(two_regions, prem) * 0.3
        d = capper.decide(two_regions, prem, 0.1 * capacity, budget)
        assert d.step is CappingStep.PREMIUM_ONLY
        assert d.served_ordinary_rps == 0.0
        assert d.predicted_cost > budget

    def test_validation(self, two_regions):
        capper = HierarchicalBillCapper()
        with pytest.raises(ValueError):
            capper.decide(two_regions, -1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            capper.decide(two_regions, 1.0, 1.0, -1.0)
