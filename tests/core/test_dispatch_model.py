"""Direct tests for the shared dispatch-MILP skeleton."""

import pytest

from repro.core import build_dispatch_model
from repro.core.dispatch_model import RATE_SCALE

from .conftest import site_hour


class TestSkeleton:
    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            build_dispatch_model([])

    def test_variable_counts_per_site(self, three_sites):
        dm = build_dispatch_model(three_sites)
        # Per site: rate + z + power + (segments: y_k + pseg_k each).
        assert len(dm.sites) == 3
        for sv in dm.sites:
            assert sv.rate.ub == pytest.approx(sv.site.max_rate_rps / RATE_SCALE)
            assert len(sv.cost.segment_active) == len(sv.cost.segment_power)
            assert len(sv.cost.prices) >= 1

    def test_activity_gating(self, three_sites):
        # Forcing z = 0 forces the rate (and power) to zero.
        dm = build_dispatch_model(three_sites)
        m = dm.model
        for sv in dm.sites:
            m.add(sv.active <= 0.0)
        m.minimize(dm.total_cost)
        res = m.solve(raise_on_failure=True)
        for sv in dm.sites:
            assert res.value(sv.rate) == pytest.approx(0.0, abs=1e-9)
            assert res.value(sv.power) == pytest.approx(0.0, abs=1e-7)

    def test_power_follows_affine_model(self, three_sites):
        lam = 1e7
        dm = build_dispatch_model(three_sites)
        m = dm.model
        sv = dm.sites[0]
        m.add(sv.rate == lam / RATE_SCALE)
        for other in dm.sites[1:]:
            m.add(other.rate == 0.0)
        m.minimize(dm.total_cost)
        res = m.solve(raise_on_failure=True)
        expected = sv.site.affine.power_mw(lam)
        assert res.value(sv.power) == pytest.approx(expected, rel=1e-6)

    def test_power_cap_row_present_when_finite(self):
        capped = site_hour(power_cap=3.0)
        dm = build_dispatch_model([capped])
        names = [c.name for c in dm.model.constraints]
        assert any(name.startswith("cap[") for name in names)

    def test_no_cap_row_when_infinite(self, three_sites):
        # conftest three_sites use the 1e4 sentinel cap (finite) — build
        # an explicitly uncapped variant.
        from repro.core import SiteHour

        sh = three_sites[0]
        uncapped = SiteHour(
            name=sh.name,
            affine=sh.affine,
            policy=sh.policy,
            background_mw=sh.background_mw,
            power_cap_mw=float("inf"),
            max_rate_rps=sh.max_rate_rps,
        )
        dm = build_dispatch_model([uncapped])
        names = [c.name for c in dm.model.constraints]
        assert not any(name.startswith("cap[") for name in names)

    def test_total_expressions(self, three_sites):
        dm = build_dispatch_model(three_sites)
        m = dm.model
        m.add(dm.total_rate_scaled == 30.0)  # 30 Mrps total
        m.minimize(dm.total_cost)
        res = m.solve(raise_on_failure=True)
        served = sum(sv.rate_rps(res) for sv in dm.sites)
        assert served == pytest.approx(30e6, rel=1e-9)
        assert res.value(dm.total_cost) == pytest.approx(
            sum(res.value(sv.cost_expr) for sv in dm.sites)
        )

    def test_margin_shrinks_cheap_segments(self):
        # The margin only applies to segments below the site's top
        # reachable one, so use a site whose power range spans the
        # breakpoints (max power 200 MW vs steps at 100/200).
        wide = site_hour(slope=1e-6, max_rate=2e8, background=50.0)
        plain = build_dispatch_model([wide], step_margin_frac=0.0)
        margined = build_dispatch_model([wide], step_margin_frac=0.05)
        p0 = plain.sites[0].cost.segment_power[0].ub
        m0 = margined.sites[0].cost.segment_power[0].ub
        assert m0 < p0
