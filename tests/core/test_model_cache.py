"""Equivalence and bookkeeping tests for the compiled-model cache.

The hot path (``backend=None`` on the optimizers) must be *invisible*:
the per-hour patched arrays have to match a fresh ``Model`` compile bit
for bit, and decisions have to match the cold SciPy path. These tests
pin both, plus the cache's LRU/invalidation behavior, the telemetry
counters, and the SciPy fallback on solver limits.
"""

import numpy as np
import pytest

from repro.core import (
    CostMinimizer,
    DispatchModelCache,
    MinOnlyDispatcher,
    PriceMode,
    SiteHour,
    ThroughputMaximizer,
)
from repro.core.dispatch_model import RATE_SCALE, build_dispatch_model
from repro.datacenter import AffinePower
from repro.powermarket import SteppedPricingPolicy, flat_policy
from repro.telemetry import Telemetry, use_telemetry

MARGIN = 0.01


def site_hour(name, slope, price1, background, max_rate=2e7, power_cap=1e4,
              segments=None):
    policy = SteppedPricingPolicy(
        name, (100.0, 200.0), (price1, price1 * 2, price1 * 4)
    )
    return SiteHour(
        name=name,
        affine=AffinePower(slope, 0.0),
        policy=policy,
        background_mw=background,
        power_cap_mw=power_cap,
        max_rate_rps=max_rate,
        power_segments=segments,
    )


def hours_at(t):
    """Three sites whose backgrounds drift with the 'hour' t."""
    return [
        site_hour("A", 0.5e-6, 10.0, 50.0 + 3.0 * t),
        site_hour("B", 0.4e-6, 12.0, 40.0 + 2.0 * t),
        site_hour("C", 0.6e-6, 8.0, 30.0 + 1.5 * t),
    ]


def _fresh_cost_min_sf(site_hours, lam):
    dm = build_dispatch_model(
        site_hours, name="cost-min", step_margin_frac=MARGIN
    )
    dm.model.add(dm.total_rate_scaled == lam / RATE_SCALE, name="serve_all")
    dm.model.minimize(dm.total_cost)
    return dm.model.to_standard_form()


def _assert_sf_equal(a, b):
    assert np.array_equal(a.c, b.c)
    assert np.array_equal(a.A_ub, b.A_ub)
    assert np.array_equal(a.b_ub, b.b_ub)
    assert np.array_equal(a.A_eq, b.A_eq)
    assert np.array_equal(a.b_eq, b.b_eq)
    assert np.array_equal(a.lb, b.lb)
    assert np.array_equal(a.ub, b.ub)
    assert np.array_equal(a.integrality, b.integrality)
    assert a.obj_constant == b.obj_constant


class TestPatchedArraysMatchFreshCompile:
    def test_cost_min_across_hours(self):
        cache = DispatchModelCache()
        for t in range(6):
            hours = hours_at(t)
            lam = 0.5 * sum(sh.max_rate_rps for sh in hours)
            entry = cache._entry("cost-min", hours, MARGIN)
            patched = cache._patched(entry, hours, MARGIN)
            patched.b_eq[entry.serve_all_row] = lam / RATE_SCALE
            _assert_sf_equal(patched, _fresh_cost_min_sf(hours, lam))
        # One structure the whole time: the drift never crossed a
        # breakpoint pattern change for these sites.
        assert len(cache) <= 2

    def test_throughput_max_across_hours(self):
        weight = 1e-6
        cache = DispatchModelCache()
        for t in range(4):
            hours = hours_at(t)
            offered = 0.6 * sum(sh.max_rate_rps for sh in hours)
            budget = 5e4
            entry = cache._entry(
                "throughput-max", hours, MARGIN, extra=(weight,)
            )
            patched = cache._patched(entry, hours, MARGIN)
            patched.b_ub[entry.demand_row] = offered / RATE_SCALE
            patched.b_ub[entry.budget_row] = budget

            dm = build_dispatch_model(
                hours, name="throughput-max", step_margin_frac=MARGIN
            )
            dm.model.add(
                dm.total_rate_scaled <= offered / RATE_SCALE, name="demand"
            )
            dm.model.add(dm.total_cost <= budget, name="budget")
            dm.model.maximize(dm.total_rate_scaled - weight * dm.total_cost)
            _assert_sf_equal(patched, dm.model.to_standard_form())

    def test_piecewise_sites(self):
        def pw_hours(t):
            segments = ((1e7, 0.2e-6), (2e7, 0.6e-6))
            return [
                site_hour("P", 0.4e-6, 10.0, 20.0 + 2.0 * t,
                          segments=segments),
                site_hour("Q", 0.5e-6, 9.0, 35.0 + 1.0 * t),
            ]

        cache = DispatchModelCache()
        for t in range(4):
            hours = pw_hours(t)
            lam = 0.4 * sum(sh.max_rate_rps for sh in hours)
            entry = cache._entry("cost-min", hours, MARGIN)
            patched = cache._patched(entry, hours, MARGIN)
            patched.b_eq[entry.serve_all_row] = lam / RATE_SCALE
            _assert_sf_equal(patched, _fresh_cost_min_sf(hours, lam))


class TestDecisionEquivalence:
    def test_cost_min_hot_matches_scipy(self):
        hot = CostMinimizer()
        cold = CostMinimizer(backend="scipy")
        for t in range(6):
            hours = hours_at(t)
            lam = 0.5 * sum(sh.max_rate_rps for sh in hours)
            d_hot = hot.solve(hours, lam)
            d_cold = cold.solve(hours, lam)
            assert d_hot.predicted_cost == pytest.approx(
                d_cold.predicted_cost, rel=1e-8
            )
            assert sum(a.rate_rps for a in d_hot.allocations) == pytest.approx(
                lam, rel=1e-9
            )

    def test_throughput_max_hot_matches_scipy(self):
        hot = ThroughputMaximizer()
        cold = ThroughputMaximizer(backend="scipy")
        for t in range(4):
            hours = hours_at(t)
            offered = 0.7 * sum(sh.max_rate_rps for sh in hours)
            budget = 0.6 * CostMinimizer(backend="scipy").solve(
                hours, offered
            ).predicted_cost
            d_hot = hot.solve(hours, offered, budget)
            d_cold = cold.solve(hours, offered, budget)
            assert d_hot.served_total_rps == pytest.approx(
                d_cold.served_total_rps, rel=1e-8
            )
            assert d_hot.predicted_cost <= budget * (1 + 1e-9)

    def test_min_only_hot_matches_scipy(self):
        hours0 = hours_at(0)
        slopes = {sh.name: sh.affine.slope_mw_per_rps for sh in hours0}
        for mode in PriceMode:
            hot = MinOnlyDispatcher(price_mode=mode, server_slopes=slopes)
            cold = MinOnlyDispatcher(
                price_mode=mode, server_slopes=slopes, backend="scipy"
            )
            for t in range(4):
                hours = hours_at(t)
                lam = 0.6 * sum(sh.max_rate_rps for sh in hours)
                d_hot = hot.solve(hours, lam)
                d_cold = cold.solve(hours, lam)
                # Per-site splits can differ between engines when two
                # sites tie on price*slope (alternate optima); the
                # objective and the served total are the contract.
                assert d_hot.predicted_cost == pytest.approx(
                    d_cold.predicted_cost, rel=1e-8
                )
                assert sum(
                    a.rate_rps for a in d_hot.allocations
                ) == pytest.approx(lam, rel=1e-9)


class TestCacheBookkeeping:
    def test_hits_and_misses_counted(self):
        tel = Telemetry()
        with use_telemetry(tel):
            hot = CostMinimizer()
            for t in range(5):
                hours = hours_at(t)
                hot.solve(hours, 0.5 * sum(sh.max_rate_rps for sh in hours))
        hits = tel.registry.counter("core.model_cache.hit").value
        misses = tel.registry.counter("core.model_cache.miss").value
        assert hits + misses == 5
        assert misses >= 1 and hits >= 3

    def test_shape_change_is_a_miss(self):
        cache = DispatchModelCache()
        hours = hours_at(0)
        cache._entry("cost-min", hours, MARGIN)
        renamed = [
            site_hour("X", 0.5e-6, 10.0, 50.0),
            site_hour("Y", 0.4e-6, 12.0, 40.0),
        ]
        cache._entry("cost-min", renamed, MARGIN)
        assert len(cache) == 2

    def test_breakpoint_crossing_changes_key(self):
        # Background above the first breakpoint removes a reachable
        # segment: different structure, different entry.
        cache = DispatchModelCache()
        cache._entry("cost-min", [site_hour("A", 0.5e-6, 10.0, 50.0)], MARGIN)
        cache._entry("cost-min", [site_hour("A", 0.5e-6, 10.0, 150.0)], MARGIN)
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = DispatchModelCache(maxsize=1)
        hours_a = hours_at(0)
        e1 = cache._entry("cost-min", hours_a, MARGIN)
        cache._entry("cost-min", [site_hour("Z", 0.5e-6, 10.0, 50.0)], MARGIN)
        assert len(cache) == 1
        e3 = cache._entry("cost-min", hours_a, MARGIN)  # rebuilt, not cached
        assert e3 is not e1

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            DispatchModelCache(maxsize=0)

    def test_scipy_fallback_on_node_limit(self):
        tel = Telemetry()
        with use_telemetry(tel):
            hot = CostMinimizer()
            cold = CostMinimizer(backend="scipy")
            hours = hours_at(0)
            lam = 0.5 * sum(sh.max_rate_rps for sh in hours)
            hot.solve(hours, lam)
            # Cripple the cached entry's own solver: every subsequent
            # hot solve must transparently fall back to SciPy. The
            # enumeration kernel would answer before the MILP is ever
            # reached, so force the branch-and-bound path for this test.
            hot.model_cache.use_enum_kernel = False
            (entry,) = hot.model_cache._entries.values()
            entry.solver.max_nodes = 0
            entry.last_x = None
            d_hot = hot.solve(hours, lam)
            assert d_hot.predicted_cost == pytest.approx(
                cold.solve(hours, lam).predicted_cost, rel=1e-8
            )
        assert tel.registry.counter("core.model_cache.fallback").value >= 1


class TestCacheConfig:
    def test_env_var_sets_default_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_CACHE_SIZE", "3")
        assert DispatchModelCache().maxsize == 3
        # An explicit constructor arg always wins over the environment.
        assert DispatchModelCache(maxsize=7).maxsize == 7

    def test_default_capacity_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MODEL_CACHE_SIZE", raising=False)
        assert DispatchModelCache().maxsize == 32

    def test_eviction_counter(self):
        tel = Telemetry()
        with use_telemetry(tel):
            cache = DispatchModelCache(maxsize=1)
            cache._entry("cost-min", hours_at(0), MARGIN)
            cache._entry(
                "cost-min", [site_hour("Z", 0.5e-6, 10.0, 50.0)], MARGIN
            )
        reg = tel.registry
        assert reg.counter("core.model_cache.evict").value == 1
        assert reg.counter("core.model_cache.miss").value == 2

    def test_solver_backend_threaded_to_entries(self):
        from repro.solver import ScipyBackend

        cache = DispatchModelCache(solver_backend="scipy", use_enum_kernel=False)
        hours = hours_at(0)
        lam = 0.5 * sum(sh.max_rate_rps for sh in hours)
        hot = CostMinimizer(model_cache=cache)
        got = hot.solve(hours, lam)
        (entry,) = cache._entries.values()
        assert isinstance(entry.solver, ScipyBackend)
        ref = CostMinimizer(backend="scipy").solve(hours, lam)
        assert got.predicted_cost == pytest.approx(ref.predicted_cost, rel=1e-8)

    def test_optimizer_solver_backend_reaches_cache(self):
        hot = CostMinimizer(solver_backend="simplex")
        hours = hours_at(0)
        hot.solve(hours, 0.5 * sum(sh.max_rate_rps for sh in hours))
        assert hot.model_cache.solver_backend == "simplex"


class TestMinOnlyLpSelection:
    def _dispatcher(self, **kwargs):
        hours = hours_at(0)
        return MinOnlyDispatcher(
            price_mode=PriceMode.AVG,
            server_slopes={sh.name: 0.4e-6 for sh in hours},
            **kwargs,
        ), hours

    def test_named_engines_resolve(self):
        from repro.core import MinOnlyCache
        from repro.solver import RevisedSimplexSolver, SimplexSolver

        assert type(MinOnlyCache(lp_solver="simplex")._solver) is SimplexSolver
        assert type(
            MinOnlyCache(lp_solver="revised-simplex")._solver
        ) is RevisedSimplexSolver
        engine = RevisedSimplexSolver()
        assert MinOnlyCache(lp_solver=engine)._solver is engine

    def test_unknown_name_rejected(self):
        from repro.core import MinOnlyCache

        with pytest.raises(ValueError, match="lp_solver"):
            MinOnlyCache(lp_solver="scipy")

    def test_revised_engine_matches_default(self):
        plain, hours = self._dispatcher()
        revised, _ = self._dispatcher(solver_backend="revised-simplex")
        lam = 0.5 * sum(sh.max_rate_rps for sh in hours)
        a = plain.solve(hours, lam)
        b = revised.solve(hours, lam)
        assert b.predicted_cost == pytest.approx(a.predicted_cost, rel=1e-8)

    def test_auto_selection_at_compile(self):
        from repro.core import MinOnlyCache
        from repro.solver import SimplexSolver

        cache = MinOnlyCache()
        assert cache._solver is None
        disp, hours = self._dispatcher(model_cache=cache)
        disp.solve(hours, 0.5 * sum(sh.max_rate_rps for sh in hours))
        # Three sites compile to a tiny LP: the dense engine wins.
        assert type(cache._solver) is SimplexSolver
