"""Tests for Step 1: price-maker-aware cost minimization."""

import pytest

from repro.core import CappingStep, CostMinimizer
from repro.solver import InfeasibleError

from .conftest import site_hour


class TestCostMinimizer:
    def test_serves_exactly_the_offered_load(self, three_sites):
        lam = 3e7
        d = CostMinimizer().solve(three_sites, lam)
        assert d.step is CappingStep.COST_MIN
        assert sum(a.rate_rps for a in d.allocations) == pytest.approx(lam, rel=1e-9)

    def test_zero_load_zero_cost(self, three_sites):
        d = CostMinimizer().solve(three_sites, 0.0)
        assert d.predicted_cost == 0.0
        assert all(a.rate_rps == 0.0 for a in d.allocations)

    def test_negative_load_rejected(self, three_sites):
        with pytest.raises(ValueError):
            CostMinimizer().solve(three_sites, -1.0)

    def test_infeasible_when_beyond_capacity(self, three_sites):
        cap = sum(s.max_rate_rps for s in three_sites)
        with pytest.raises(InfeasibleError):
            CostMinimizer().solve(three_sites, cap * 1.01)

    def test_prefers_cheapest_effective_site(self):
        # Two identical sites except for price; all load fits below any step.
        cheap = site_hour("cheap", background=0.0, max_rate=2e7)
        exp = site_hour(
            "exp",
            policy=cheap.policy.__class__("exp", (100.0, 200.0), (30.0, 60.0, 120.0)),
            background=0.0,
            max_rate=2e7,
        )
        d = CostMinimizer().solve([cheap, exp], 1e7)
        assert d.rate_for("cheap") == pytest.approx(1e7)
        assert d.rate_for("exp") == pytest.approx(0.0)

    def test_splits_to_avoid_price_step(self):
        # One site alone would cross its 100 MW step (background 90 +
        # 18 MW of DC load); splitting keeps both markets at the base price.
        a = site_hour("a", slope=1e-6, background=90.0, max_rate=4e7)
        b = site_hour("b", slope=1e-6, background=90.0, max_rate=4e7)
        lam = 1.8e7  # 18 MW total
        d = CostMinimizer().solve([a, b], lam)
        for alloc in d.allocations:
            assert alloc.predicted_power_mw <= 10.0 + 1e-4
        assert d.predicted_cost == pytest.approx(18.0 * 10.0, rel=1e-5)

    def test_whole_draw_billed_at_marginal_price(self):
        # The paper's cost model is Pr_i * p_i: once a site crosses a
        # step, its *entire* draw is billed at the higher price. With
        # exactly 20 MW of demand and only 2 x (10 MW - eps) of cheap
        # headroom, one site must cross and pay 20 $/MWh on all 10 MW.
        a = site_hour("a", slope=1e-6, background=90.0, max_rate=4e7)
        b = site_hour("b", slope=1e-6, background=90.0, max_rate=4e7)
        d = CostMinimizer().solve([a, b], 2e7)
        # ~10 MW at the base price + ~10 MW repriced one level up (the
        # breakpoint safety margin shifts a little more into the higher
        # level, hence the loose tolerance).
        assert d.predicted_cost == pytest.approx(10.0 * 10.0 + 10.0 * 20.0, rel=0.05)

    def test_price_maker_beats_naive_single_site(self):
        a = site_hour("a", slope=1e-6, background=90.0, max_rate=4e7)
        b = site_hour("b", slope=1e-6, background=90.0, max_rate=4e7)
        d = CostMinimizer().solve([a, b], 2e7)
        naive_cost = a.cost_of_power(20.0)  # all 20 MW at one site: crosses step
        assert d.predicted_cost < naive_cost

    def test_respects_power_caps(self):
        a = site_hour("a", slope=1e-6, power_cap=5.0, max_rate=4e7)
        b = site_hour("b", slope=1e-6, max_rate=4e7)
        d = CostMinimizer().solve([a, b], 2e7)  # 20 MW total
        for alloc in d.allocations:
            if alloc.site == "a":
                assert alloc.predicted_power_mw <= 5.0 + 1e-6

    def test_predicted_price_consistent_with_policy(self, three_sites):
        d = CostMinimizer().solve(three_sites, 5e7)
        for alloc, sh in zip(d.allocations, three_sites):
            if alloc.predicted_power_mw > 1e-9:
                market = sh.background_mw + alloc.predicted_power_mw
                assert alloc.predicted_price == pytest.approx(
                    sh.policy.price(market - 1e-9), rel=1e-6
                )

    def test_branch_bound_backend_matches_default(self, three_sites):
        lam = 4e7
        d_sp = CostMinimizer().solve(three_sites, lam)
        d_bb = CostMinimizer(backend="branch-bound").solve(three_sites, lam)
        assert d_bb.predicted_cost == pytest.approx(d_sp.predicted_cost, rel=1e-6)

    def test_monotone_in_load(self, three_sites):
        costs = [
            CostMinimizer().solve(three_sites, lam).predicted_cost
            for lam in (1e7, 2e7, 4e7, 6e7)
        ]
        assert costs == sorted(costs)
