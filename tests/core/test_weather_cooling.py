"""Tests for the weather-varying cooling extension."""

import numpy as np
import pytest

from repro.core import CostMinimizer, Site
from repro.datacenter import synthetic_coe_trace
from repro.powermarket import SteppedPricingPolicy

from .conftest import small_datacenter


def make_weather_site(hours=48, amplitude=0.3):
    dc = small_datacenter()
    policy = SteppedPricingPolicy("W", (100.0, 200.0), (10.0, 20.0, 40.0))
    coe = synthetic_coe_trace(hours, 1.94, daily_amplitude=amplitude, noise=0.0)
    return Site(dc, policy, np.full(hours, 50.0), coe_trace=coe)


class TestSyntheticCoeTrace:
    def test_shape_and_positivity(self):
        t = synthetic_coe_trace(72, 1.5, seed=1)
        assert t.shape == (72,)
        assert np.all(t > 0)

    def test_mean_near_base(self):
        t = synthetic_coe_trace(24 * 30, 1.94, noise=0.0)
        assert t.mean() == pytest.approx(1.94, rel=0.01)

    def test_night_more_efficient_than_afternoon(self):
        t = synthetic_coe_trace(24, 2.0, noise=0.0)
        assert t[5] > t[15]  # 5am cold vs 3pm heat

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_coe_trace(0, 1.0)
        with pytest.raises(ValueError):
            synthetic_coe_trace(10, -1.0)
        with pytest.raises(ValueError):
            synthetic_coe_trace(10, 1.0, daily_amplitude=1.5)


class TestWeatherSite:
    def test_trace_length_validated(self):
        dc = small_datacenter()
        policy = SteppedPricingPolicy("W", (100.0,), (10.0, 20.0))
        with pytest.raises(ValueError, match="length"):
            Site(dc, policy, np.full(48, 50.0), coe_trace=np.full(24, 1.9))
        with pytest.raises(ValueError, match="positive"):
            Site(dc, policy, np.full(4, 50.0), coe_trace=np.zeros(4))

    def test_datacenter_at_swaps_cooling(self):
        site = make_weather_site()
        dc5 = site.datacenter_at(5)
        dc15 = site.datacenter_at(15)
        assert dc5.cooling.coe != dc15.cooling.coe
        # Base object untouched.
        assert site.datacenter.cooling.coe == pytest.approx(1.94)

    def test_power_cheaper_at_night(self):
        site = make_weather_site(amplitude=0.3)
        lam = 1e6
        p_night, _, _ = site.evaluate_hour(5, lam)
        p_day, _, _ = site.evaluate_hour(15, lam)
        assert p_night < p_day

    def test_hour_snapshot_uses_hourly_coe(self):
        site = make_weather_site(amplitude=0.3)
        slope_night = site.hour(5).affine.slope_mw_per_rps
        slope_day = site.hour(15).affine.slope_mw_per_rps
        assert slope_night < slope_day

    def test_dispatch_prefers_cold_site(self):
        # Two identical sites, opposite weather phases: the optimizer
        # should favour whichever is colder (more efficient) that hour.
        hours = 24
        dc_a = small_datacenter(name="A")
        dc_b = small_datacenter(name="B")
        policy = lambda n: SteppedPricingPolicy(n, (1000.0,), (10.0, 20.0))
        coe = synthetic_coe_trace(hours, 1.94, daily_amplitude=0.4, noise=0.0)
        a = Site(dc_a, policy("A"), np.full(hours, 10.0), coe_trace=coe)
        b = Site(dc_b, policy("B"), np.full(hours, 10.0), coe_trace=coe[::-1].copy())
        lam = 5e6
        d = CostMinimizer().solve([a.hour(5), b.hour(5)], lam)
        # At 5am site A is cold (efficient); it should carry the load.
        assert d.rate_for("A") > d.rate_for("B")

    def test_simulator_with_weather(self):
        from repro.sim import Simulator
        from repro.workload import CustomerMix, Trace

        site = make_weather_site(hours=24)
        wl = Trace(np.full(24, 2e6))
        sim = Simulator([site], wl, CustomerMix())
        res = sim.run_capping(hours=24)
        assert res.total_cost > 0
        # Hourly cost varies with the weather even under flat load/price.
        costs = res.hourly_costs
        assert costs.max() > costs.min() * 1.05
