"""Tests for piecewise-convex power models in the dispatch MILP."""

import numpy as np
import pytest

from repro.core import CostMinimizer, SiteHour, ThroughputMaximizer
from repro.datacenter import AffinePower
from repro.powermarket import SteppedPricingPolicy, flat_policy


def piecewise_site(
    name="H",
    segments=((1e7, 0.2e-6), (2e7, 0.6e-6)),
    background=10.0,
    policy=None,
):
    policy = policy or flat_policy(name, 10.0)
    max_rate = segments[-1][0]
    # Secant affine: total power at capacity / capacity.
    total_power = 0.0
    prev = 0.0
    for cap, slope in segments:
        total_power += (cap - prev) * slope
        prev = cap
    return SiteHour(
        name=name,
        affine=AffinePower(total_power / max_rate, 0.0),
        policy=policy,
        background_mw=background,
        power_cap_mw=1e4,
        max_rate_rps=max_rate,
        power_segments=segments,
    )


class TestValidation:
    def test_decreasing_slopes_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            piecewise_site(segments=((1e7, 0.6e-6), (2e7, 0.2e-6)))

    def test_unsorted_capacities_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            piecewise_site(segments=((2e7, 0.2e-6), (1e7, 0.6e-6)))

    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SiteHour(
                name="e",
                affine=AffinePower(1e-6, 0.0),
                policy=flat_policy("e", 10.0),
                background_mw=1.0,
                power_cap_mw=10.0,
                max_rate_rps=1e6,
                power_segments=(),
            )


class TestDispatchUsesSegments:
    def test_power_matches_piecewise_curve_below_knee(self):
        site = piecewise_site()
        d = CostMinimizer().solve([site], 5e6)  # within the first segment
        assert d.allocations[0].predicted_power_mw == pytest.approx(
            5e6 * 0.2e-6, rel=1e-6
        )

    def test_power_matches_piecewise_curve_past_knee(self):
        site = piecewise_site()
        lam = 1.5e7  # 1e7 in seg 1, 0.5e7 in seg 2
        d = CostMinimizer().solve([site], lam)
        expected = 1e7 * 0.2e-6 + 0.5e7 * 0.6e-6
        assert d.allocations[0].predicted_power_mw == pytest.approx(expected, rel=1e-6)

    def test_cheaper_than_secant_affine_model(self):
        # The same site *without* segments uses the conservative secant:
        # its believed power (hence cost) is higher below the knee.
        seg_site = piecewise_site()
        affine_site = SiteHour(
            name=seg_site.name,
            affine=seg_site.affine,
            policy=seg_site.policy,
            background_mw=seg_site.background_mw,
            power_cap_mw=seg_site.power_cap_mw,
            max_rate_rps=seg_site.max_rate_rps,
        )
        lam = 5e6
        d_seg = CostMinimizer().solve([seg_site], lam)
        d_aff = CostMinimizer().solve([affine_site], lam)
        assert d_seg.predicted_cost < d_aff.predicted_cost

    def test_throughput_max_fills_efficient_segment_first(self):
        # Budget covers the efficient segment but not much of the
        # expensive one: served rate must exceed the efficient capacity
        # fraction a wrong-order fill would deliver.
        site = piecewise_site()
        price = 10.0
        budget = price * (1e7 * 0.2e-6) * 1.05  # ~the efficient segment's bill
        d = ThroughputMaximizer().solve([site], 2e7, budget)
        assert d.served_total_rps >= 1e7 * 0.99

    def test_two_sites_with_and_without_segments(self):
        seg = piecewise_site("seg")
        plain = SiteHour(
            name="plain",
            affine=AffinePower(0.5e-6, 0.0),
            policy=flat_policy("plain", 10.0),
            background_mw=5.0,
            power_cap_mw=1e4,
            max_rate_rps=3e7,
        )
        d = CostMinimizer().solve([seg, plain], 1.2e7)
        # The efficient first segment (0.2 W/rps) beats the plain site
        # (0.5 W/rps); past its knee (0.6 W/rps) the plain site wins.
        assert d.rate_for("seg") == pytest.approx(1e7, rel=1e-3)
        assert d.rate_for("plain") == pytest.approx(0.2e7, rel=1e-2)

    def test_heterogeneous_site_round_trip(self):
        # End to end: a real HeterogeneousDataCenter through Site.hour().
        from repro.core import Site
        from repro.datacenter import (
            CoolingModel,
            HeterogeneousDataCenter,
            ServerPool,
            ServerSpec,
            SwitchPowers,
        )

        hdc = HeterogeneousDataCenter(
            name="HDC",
            pools=(
                ServerPool(ServerSpec.from_operating_point("new", 50.0, 725.0), 2000),
                ServerPool(ServerSpec.from_operating_point("old", 100.0, 500.0), 2000),
            ),
            switch_powers=SwitchPowers(184.0, 184.0, 240.0),
            cooling=CoolingModel(1.94),
            target_response_s=0.5,
        )
        site = Site(hdc, flat_policy("HDC", 12.0), np.full(4, 1.0))
        sh = site.hour(0)
        assert sh.power_segments is not None and len(sh.power_segments) == 2
        lam = 8e5  # within the efficient pool
        d = CostMinimizer().solve([sh], lam)
        # Decision power tracks the exact greedy provisioning closely.
        exact = hdc.power_mw(lam)
        assert d.allocations[0].predicted_power_mw == pytest.approx(exact, rel=0.10)
