"""Property-based tests for the bill capper's guarantees.

Randomized site configurations and demand/budget splits; the paper's
semantics must hold for every draw:

* premium demand within capacity is always fully served;
* the predicted cost respects the budget except in premium-only hours;
* admitted ordinary traffic never exceeds demand;
* cost minimization over more sites never costs more;
* throughput within budget is monotone in the budget.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BillCapper, CappingStep, CostMinimizer, SiteHour
from repro.datacenter import AffinePower
from repro.powermarket import SteppedPricingPolicy


@st.composite
def random_site(draw, name: str):
    base_price = draw(st.floats(min_value=5.0, max_value=25.0))
    n_levels = draw(st.integers(min_value=1, max_value=4))
    increments = sorted(
        draw(
            st.lists(
                st.floats(min_value=5.0, max_value=120.0),
                min_size=n_levels - 1,
                max_size=n_levels - 1,
                unique=True,
            )
        )
    )
    prices = tuple(
        base_price * (1 + draw(st.floats(min_value=0.0, max_value=2.0)) * k)
        for k in range(n_levels)
    )
    prices = tuple(sorted(prices))
    policy = SteppedPricingPolicy(name, tuple(increments), prices)
    slope = draw(st.floats(min_value=0.1e-6, max_value=1.0e-6))
    background = draw(st.floats(min_value=0.0, max_value=100.0))
    max_rate = draw(st.floats(min_value=1e6, max_value=5e7))
    return SiteHour(
        name=name,
        affine=AffinePower(slope, 0.0),
        policy=policy,
        background_mw=background,
        power_cap_mw=1e4,
        max_rate_rps=max_rate,
    )


@st.composite
def capper_scenarios(draw):
    n_sites = draw(st.integers(min_value=1, max_value=3))
    sites = [draw(random_site(f"S{i}")) for i in range(n_sites)]
    capacity = sum(s.max_rate_rps for s in sites)
    demand_frac = draw(st.floats(min_value=0.05, max_value=0.95))
    premium_frac = draw(st.floats(min_value=0.1, max_value=1.0))
    total = demand_frac * capacity
    return sites, premium_frac * total, (1 - premium_frac) * total


class TestCapperProperties:
    @settings(max_examples=25, deadline=None)
    @given(capper_scenarios(), st.floats(min_value=0.0, max_value=2.0))
    def test_guarantees_hold_for_any_budget(self, scenario, budget_frac):
        sites, premium, ordinary = scenario
        full_cost = CostMinimizer().solve(sites, premium + ordinary).predicted_cost
        budget = budget_frac * full_cost
        decision = BillCapper().decide(sites, premium, ordinary, budget)

        # Premium always fully served (demand is within capacity).
        assert decision.served_premium_rps >= premium * (1 - 1e-6)
        # Ordinary admission never exceeds demand.
        assert decision.served_ordinary_rps <= ordinary * (1 + 1e-6)
        # Budget respected unless the algorithm declared premium-only.
        if decision.step is not CappingStep.PREMIUM_ONLY:
            assert decision.predicted_cost <= budget * (1 + 1e-6) + 1e-9
        # Premium-only hours serve no ordinary traffic.
        if decision.step is CappingStep.PREMIUM_ONLY:
            assert decision.served_ordinary_rps == 0.0

    @settings(max_examples=20, deadline=None)
    @given(capper_scenarios())
    def test_more_sites_never_cost_more(self, scenario):
        sites, premium, ordinary = scenario
        lam = min(premium + ordinary, sites[0].max_rate_rps * 0.9)
        solo = CostMinimizer().solve([sites[0]], lam).predicted_cost
        networked = CostMinimizer().solve(sites, lam).predicted_cost
        assert networked <= solo * (1 + 1e-6)

    @settings(max_examples=15, deadline=None)
    @given(capper_scenarios())
    def test_throughput_monotone_in_budget(self, scenario):
        sites, premium, ordinary = scenario
        full_cost = CostMinimizer().solve(sites, premium + ordinary).predicted_cost
        served = []
        for frac in (0.3, 0.6, 0.9, 1.2):
            d = BillCapper().decide(sites, premium, ordinary, frac * full_cost)
            served.append(d.served_total_rps)
        for lo, hi in zip(served, served[1:]):
            assert hi >= lo * (1 - 1e-6)
