"""Tests for Step 2: throughput maximization within a cost budget."""

import pytest

from repro.core import CappingStep, CostMinimizer, ThroughputMaximizer

from .conftest import site_hour


class TestThroughputMaximizer:
    def test_generous_budget_serves_everything(self, three_sites):
        lam = 3e7
        unconstrained = CostMinimizer().solve(three_sites, lam)
        d = ThroughputMaximizer().solve(three_sites, lam, unconstrained.predicted_cost * 2)
        assert d.step is CappingStep.THROUGHPUT_MAX
        assert d.served_total_rps == pytest.approx(lam, rel=1e-6)
        assert d.budget == unconstrained.predicted_cost * 2

    def test_zero_budget_serves_nothing(self, three_sites):
        d = ThroughputMaximizer().solve(three_sites, 3e7, 0.0)
        assert d.served_total_rps <= 3e7 * 1e-9

    def test_tight_budget_partial_service(self, three_sites):
        lam = 3e7
        full_cost = CostMinimizer().solve(three_sites, lam).predicted_cost
        d = ThroughputMaximizer().solve(three_sites, lam, full_cost * 0.5)
        assert 0.0 < d.served_total_rps < lam
        assert d.predicted_cost <= full_cost * 0.5 * (1 + 1e-6)

    def test_throughput_monotone_in_budget(self, three_sites):
        lam = 3e7
        full_cost = CostMinimizer().solve(three_sites, lam).predicted_cost
        served = [
            ThroughputMaximizer().solve(three_sites, lam, full_cost * f).served_total_rps
            for f in (0.2, 0.5, 0.8, 1.1)
        ]
        assert served == sorted(served)

    def test_never_exceeds_offered_load(self, three_sites):
        d = ThroughputMaximizer().solve(three_sites, 1e6, budget=1e12)
        assert d.served_total_rps <= 1e6 * (1 + 1e-9)

    def test_budget_binding_exactly_when_throttling(self, three_sites):
        lam = 3e7
        full_cost = CostMinimizer().solve(three_sites, lam).predicted_cost
        budget = full_cost * 0.6
        d = ThroughputMaximizer().solve(three_sites, lam, budget)
        if d.served_total_rps < lam * (1 - 1e-6):
            # Throttled: the budget should be (nearly) exhausted.
            assert d.predicted_cost >= budget * 0.95

    def test_cost_tiebreak_prefers_cheaper_allocation(self):
        # Two sites, either alone can serve everything within budget:
        # the tiebreak should route to the cheaper one.
        cheap = site_hour("cheap", background=0.0, max_rate=4e7)
        exp = site_hour(
            "exp",
            policy=cheap.policy.__class__("exp", (100.0, 200.0), (30.0, 60.0, 120.0)),
            background=0.0,
            max_rate=4e7,
        )
        d = ThroughputMaximizer().solve([cheap, exp], 1e7, budget=1e9)
        assert d.rate_for("cheap") == pytest.approx(1e7, rel=1e-6)

    def test_validation(self, three_sites):
        with pytest.raises(ValueError):
            ThroughputMaximizer().solve(three_sites, -1.0, 10.0)
        with pytest.raises(ValueError):
            ThroughputMaximizer().solve(three_sites, 1.0, -10.0)

    def test_zero_offered_load(self, three_sites):
        d = ThroughputMaximizer().solve(three_sites, 0.0, 100.0)
        assert d.served_total_rps == 0.0
        assert d.budget == 100.0
