"""The region-decomposed dispatch solver must match the monolithic MILP.

The decomposition's contract is *certified equivalence*: an outcome is
only returned when the duality gap proves the recovered dispatch within
``gap_tol`` of the monolithic optimum — otherwise it returns None and
the optimizers fall back to the monolithic solve. Either branch must
therefore agree with SciPy/HiGHS within the 0.1% equivalence tolerance,
across fleet sizes, region shapes and piecewise-degenerate (bail-out)
power curves.
"""

import numpy as np
import pytest

from repro.core import (
    CostMinimizer,
    SiteHour,
    ThroughputMaximizer,
    decomposition_auto_sites,
    partition_market_regions,
)
from repro.core.decomposition import DECOMP_AUTO_SITES, DecompositionSolver
from repro.core.enum_kernel import site_choices
from repro.datacenter import AffinePower
from repro.powermarket import SteppedPricingPolicy
from repro.telemetry import Telemetry, use_telemetry

MARGIN = 0.01
EQUIV_REL = 1e-3  # the 0.1% acceptance tolerance


def grouped_hours(rng, n_sites, n_groups=3, piecewise=False):
    """A fleet with ``n_groups`` shared pricing policies (market regions)."""
    policies = []
    for g in range(n_groups):
        base = float(rng.uniform(5.0, 15.0))
        policies.append(
            SteppedPricingPolicy(
                f"g{g}",
                (float(rng.uniform(60.0, 140.0)),
                 float(rng.uniform(150.0, 260.0))),
                (base, base * 2.0, base * 4.0),
            )
        )
    hours = []
    for i in range(n_sites):
        slope = float(rng.uniform(0.3e-6, 0.8e-6))
        segments = None
        if piecewise:
            segments = ((1e7, slope * 0.5), (2e7, slope * 1.5))
        hours.append(
            SiteHour(
                name=f"s{i}",
                affine=AffinePower(slope, float(rng.uniform(0.0, 3.0))),
                policy=policies[i % n_groups],
                background_mw=float(rng.uniform(10.0, 120.0)),
                power_cap_mw=float(rng.uniform(50.0, 1e4)),
                max_rate_rps=float(rng.uniform(0.5e7, 3e7)),
                power_segments=segments,
            )
        )
    return hours


class TestPartition:
    def test_covers_every_site_exactly_once(self):
        rng = np.random.default_rng(0)
        hours = grouped_hours(rng, 40, n_groups=4)
        choices = [site_choices(sh, MARGIN) for sh in hours]
        regions = partition_market_regions(hours, choices)
        seen = sorted(i for r in regions for i in r)
        assert seen == list(range(40))

    def test_respects_combo_cap(self):
        rng = np.random.default_rng(1)
        hours = grouped_hours(rng, 60, n_groups=3)
        choices = [site_choices(sh, MARGIN) for sh in hours]
        regions = partition_market_regions(hours, choices, max_region_combos=64)
        for r in regions:
            prod = 1
            for i in r:
                prod *= len(choices[i].lo)
            assert prod <= 64

    def test_same_policy_sites_stay_adjacent(self):
        rng = np.random.default_rng(2)
        hours = grouped_hours(rng, 30, n_groups=3)
        choices = [site_choices(sh, MARGIN) for sh in hours]
        regions = partition_market_regions(hours, choices)
        # Flattened region order visits each policy group contiguously.
        flat = [i for r in regions for i in r]
        policy_seq = [id(hours[i].policy) for i in flat]
        seen_done = set()
        prev = None
        for p in policy_seq:
            if p != prev:
                assert p not in seen_done
                if prev is not None:
                    seen_done.add(prev)
                prev = p


class TestCostMinEquivalence:
    def test_randomized_fleets_match_scipy(self):
        rng = np.random.default_rng(7)
        solver = DecompositionSolver()
        for trial in range(8):
            n = int(rng.integers(20, 60))
            hours = grouped_hours(rng, n, n_groups=int(rng.integers(2, 5)))
            lam = float(rng.uniform(0.3, 0.8)) * sum(
                sh.max_rate_rps for sh in hours
            )
            ref = CostMinimizer(backend="scipy").solve(hours, lam)
            out = solver.solve_cost_min(hours, lam, MARGIN)
            if out is None:
                continue  # uncertified: the fallback contract covers it
            decision = out.to_decision(hours, ref.step)
            assert decision.predicted_cost == pytest.approx(
                ref.predicted_cost, rel=EQUIV_REL
            )
            assert decision.served_total_rps == pytest.approx(lam, rel=1e-6)

    def test_optimizer_falls_back_when_uncertified(self):
        # Tiny fleets rarely certify the gap; the optimizer must still
        # return the monolithic answer, bit-for-bit in cost terms.
        rng = np.random.default_rng(11)
        for trial in range(6):
            hours = grouped_hours(rng, int(rng.integers(2, 6)))
            lam = float(rng.uniform(0.3, 0.8)) * sum(
                sh.max_rate_rps for sh in hours
            )
            ref = CostMinimizer(backend="scipy").solve(hours, lam)
            got = CostMinimizer(solver_backend="decomposition").solve(hours, lam)
            assert got.predicted_cost == pytest.approx(
                ref.predicted_cost, rel=EQUIV_REL, abs=1e-6
            )

    def test_piecewise_power_curves_fall_back(self):
        # Piecewise (degenerate for the choice model) sites bail out of
        # the decomposition entirely; answers still match monolithic.
        rng = np.random.default_rng(13)
        hours = grouped_hours(rng, 12, piecewise=True)
        lam = 0.5 * sum(sh.max_rate_rps for sh in hours)
        assert DecompositionSolver().solve_cost_min(hours, lam, MARGIN) is None
        ref = CostMinimizer(backend="scipy").solve(hours, lam)
        got = CostMinimizer(solver_backend="decomposition").solve(hours, lam)
        assert got.predicted_cost == pytest.approx(
            ref.predicted_cost, rel=EQUIV_REL
        )

    def test_warm_multipliers_survive_hours(self):
        rng = np.random.default_rng(17)
        hours = grouped_hours(rng, 40)
        solver = DecompositionSolver()
        lam = 0.5 * sum(sh.max_rate_rps for sh in hours)
        first = solver.solve_cost_min(hours, lam, MARGIN)
        second = solver.solve_cost_min(hours, lam * 1.02, MARGIN)
        for out, target in ((first, lam), (second, lam * 1.02)):
            if out is not None:
                assert out.served_scaled * 1e6 == pytest.approx(
                    target, rel=1e-6
                )


class TestThroughputMaxEquivalence:
    def test_randomized_fleets_match_scipy(self):
        rng = np.random.default_rng(23)
        solver = DecompositionSolver()
        weight = 1e-6
        for trial in range(6):
            n = int(rng.integers(20, 50))
            hours = grouped_hours(rng, n, n_groups=int(rng.integers(2, 4)))
            lam = float(rng.uniform(0.4, 0.9)) * sum(
                sh.max_rate_rps for sh in hours
            )
            base_cost = CostMinimizer(backend="scipy").solve(
                hours, lam
            ).predicted_cost
            budget = float(rng.uniform(0.5, 0.9)) * base_cost
            ref = ThroughputMaximizer(backend="scipy").solve(
                hours, lam, budget
            )
            out = solver.solve_throughput_max(hours, lam, budget, MARGIN, weight)
            if out is None:
                continue
            decision = out.to_decision(hours, ref.step)
            assert decision.served_total_rps == pytest.approx(
                ref.served_total_rps, rel=EQUIV_REL
            )
            assert decision.predicted_cost <= budget * (1 + 1e-6)

    def test_optimizer_respects_budget_and_matches(self):
        rng = np.random.default_rng(29)
        for trial in range(4):
            hours = grouped_hours(rng, int(rng.integers(3, 8)))
            lam = 0.7 * sum(sh.max_rate_rps for sh in hours)
            base_cost = CostMinimizer(backend="scipy").solve(
                hours, lam
            ).predicted_cost
            budget = 0.7 * base_cost
            ref = ThroughputMaximizer(backend="scipy").solve(hours, lam, budget)
            got = ThroughputMaximizer(solver_backend="decomposition").solve(
                hours, lam, budget
            )
            assert got.served_total_rps == pytest.approx(
                ref.served_total_rps, rel=EQUIV_REL, abs=1.0
            )
            assert got.predicted_cost <= budget * (1 + 1e-6)
            assert got.budget == budget


class TestActivationAndTelemetry:
    def test_auto_sites_env_override(self, monkeypatch):
        assert decomposition_auto_sites() == DECOMP_AUTO_SITES
        monkeypatch.setenv("REPRO_DECOMP_AUTO_SITES", "17")
        assert decomposition_auto_sites() == 17

    def test_auto_activation_above_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_DECOMP_AUTO_SITES", "10")
        rng = np.random.default_rng(31)
        hours = grouped_hours(rng, 30)
        lam = 0.5 * sum(sh.max_rate_rps for sh in hours)
        tel = Telemetry()
        with use_telemetry(tel):
            got = CostMinimizer().solve(hours, lam)
        reg = tel.registry
        attempts = (
            reg.counter("core.decomposition.solved").value
            + reg.counter("core.decomposition.fallback").value
            + reg.counter("core.decomposition.gap_accept").value
        )
        assert attempts >= 1
        ref = CostMinimizer(backend="scipy").solve(hours, lam)
        assert got.predicted_cost == pytest.approx(
            ref.predicted_cost, rel=EQUIV_REL
        )

    def test_no_auto_activation_below_threshold(self):
        rng = np.random.default_rng(37)
        hours = grouped_hours(rng, 3)
        lam = 0.5 * sum(sh.max_rate_rps for sh in hours)
        tel = Telemetry()
        with use_telemetry(tel):
            CostMinimizer().solve(hours, lam)
        reg = tel.registry
        assert reg.counter("core.decomposition.solved").value == 0
        assert reg.counter("core.decomposition.fallback").value == 0

    def test_env_backend_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_BACKEND", "decomposition")
        rng = np.random.default_rng(41)
        hours = grouped_hours(rng, 25)
        lam = 0.5 * sum(sh.max_rate_rps for sh in hours)
        tel = Telemetry()
        with use_telemetry(tel):
            CostMinimizer().solve(hours, lam)
        reg = tel.registry
        attempts = (
            reg.counter("core.decomposition.solved").value
            + reg.counter("core.decomposition.fallback").value
            + reg.counter("core.decomposition.gap_accept").value
        )
        assert attempts >= 1
