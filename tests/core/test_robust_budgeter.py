"""Tests for the adaptive budgeter (prediction-error robustness)."""

import numpy as np
import pytest

from repro.core import AdaptiveBudgeter, Budgeter
from repro.workload import HOURS_PER_WEEK, HourOfWeekPredictor, Trace


def _flat_predictor(level=100.0):
    return HourOfWeekPredictor(Trace(np.full(HOURS_PER_WEEK, level)))


def _biased_predictor():
    """Predicts a strong peak in the first day that won't materialize."""
    profile = np.full(HOURS_PER_WEEK, 50.0)
    profile[:24] = 500.0
    return HourOfWeekPredictor(Trace(profile))


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBudgeter(-1.0, _flat_predictor())
        with pytest.raises(ValueError):
            AdaptiveBudgeter(1.0, _flat_predictor(), month_hours=0)
        with pytest.raises(ValueError):
            AdaptiveBudgeter(1.0, _flat_predictor(), reserve_fraction=1.0)
        with pytest.raises(ValueError):
            AdaptiveBudgeter(1.0, _flat_predictor(), release_hours=0)


class TestSelfCorrection:
    def test_flat_world_flat_budgets(self):
        b = AdaptiveBudgeter(240.0, _flat_predictor(), month_hours=240,
                             reserve_fraction=0.0)
        first = b.hourly_budget()
        b.record_spend(first)
        second = b.hourly_budget()
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(1.0)

    def test_underspend_grows_future_budgets(self):
        b = AdaptiveBudgeter(240.0, _flat_predictor(), month_hours=240,
                             reserve_fraction=0.0)
        for _ in range(24):
            b.hourly_budget()
            b.record_spend(0.5)  # half the allocation
        assert b.hourly_budget() > 1.0

    def test_overspend_shrinks_future_budgets(self):
        b = AdaptiveBudgeter(240.0, _flat_predictor(), month_hours=240,
                             reserve_fraction=0.0)
        for _ in range(24):
            b.hourly_budget()
            b.record_spend(2.0)  # double the allocation
        assert b.hourly_budget() < 1.0
        assert b.hourly_budget() >= 0.0

    def test_monthly_total_tracks_budget_under_bias(self):
        # Spend exactly what's granted each hour: totals must approach
        # the monthly budget even with a badly biased forecast.
        b = AdaptiveBudgeter(1000.0, _biased_predictor(), month_hours=336,
                             reserve_fraction=0.0)
        for _ in range(336):
            grant = b.hourly_budget()
            b.record_spend(grant)
        assert b.total_spent == pytest.approx(1000.0, rel=1e-6)

    def test_amortizes_forced_overspend_where_plain_violates(self):
        # First half of the month: mandatory (premium-only style) spend
        # 40% above the fair share, regardless of the grant. Second
        # half: spend whatever is granted. The plain budgeter's fixed
        # base split cannot take the early overrun back across weeks,
        # so it finishes over the monthly budget; the adaptive one
        # shrinks later grants and lands on target.
        M, H = 1000.0, 336
        forced = 1.4 * M / H
        plain = Budgeter(M, _flat_predictor(), month_hours=H)
        adaptive = AdaptiveBudgeter(M, _flat_predictor(), month_hours=H,
                                    reserve_fraction=0.0)
        for b in (plain, adaptive):
            for t in range(H):
                grant = b.hourly_budget()
                b.record_spend(forced if t < H // 2 else grant)
        assert adaptive.total_spent == pytest.approx(M, rel=1e-6)
        assert plain.total_spent > M * 1.05
        assert adaptive.total_spent < plain.total_spent


class TestReserve:
    def test_reserve_withheld_early(self):
        with_res = AdaptiveBudgeter(240.0, _flat_predictor(), month_hours=240,
                                    reserve_fraction=0.2, release_hours=24)
        without = AdaptiveBudgeter(240.0, _flat_predictor(), month_hours=240,
                                   reserve_fraction=0.0)
        assert with_res.hourly_budget() < without.hourly_budget()

    def test_reserve_released_at_tail(self):
        b = AdaptiveBudgeter(240.0, _flat_predictor(), month_hours=240,
                             reserve_fraction=0.2, release_hours=24)
        for _ in range(239):
            b.hourly_budget()
            b.record_spend(0.0)
        # Final hour: the entire monthly budget is allocatable.
        assert b.hourly_budget() == pytest.approx(240.0, rel=1e-6)

    def test_full_spend_with_reserve_hits_total(self):
        b = AdaptiveBudgeter(500.0, _flat_predictor(), month_hours=120,
                             reserve_fraction=0.1, release_hours=24)
        for _ in range(120):
            b.record_spend(b.hourly_budget())
        assert b.total_spent == pytest.approx(500.0, rel=1e-6)


class TestProtocolCompatibility:
    def test_accounting_properties(self):
        b = AdaptiveBudgeter(100.0, _flat_predictor(), month_hours=10)
        b.hourly_budget()
        b.record_spend(3.0)
        assert b.current_hour == 1
        assert b.total_spent == pytest.approx(3.0)
        assert b.remaining_budget == pytest.approx(97.0)
        assert b.spent_through(1) == pytest.approx(3.0)

    def test_exhaustion_guard(self):
        b = AdaptiveBudgeter(10.0, _flat_predictor(), month_hours=1)
        b.hourly_budget()
        b.record_spend(1.0)
        with pytest.raises(RuntimeError):
            b.hourly_budget()
        with pytest.raises(RuntimeError):
            b.record_spend(1.0)

    def test_negative_cost_rejected(self):
        b = AdaptiveBudgeter(10.0, _flat_predictor(), month_hours=2)
        with pytest.raises(ValueError):
            b.record_spend(-1.0)

    def test_works_in_simulator(self):
        from repro.experiments import paper_world
        from repro.sim import Simulator

        w = paper_world(max_servers=500_000)
        sim = Simulator(w.sites, w.workload, w.mix)
        anchor = sim.run_capping(hours=24)
        budget = anchor.total_cost * w.hours / 24 * 0.8
        adaptive = AdaptiveBudgeter(
            budget, w.predictor(), month_hours=w.hours,
            start_weekday=w.workload.start_weekday,
        )
        res = sim.run_capping(adaptive, hours=24)
        assert res.premium_throughput_fraction == pytest.approx(1.0)
        assert res.total_cost > 0
