"""The segment-enumeration kernel must match branch-and-bound and SciPy.

The kernel claims *exactness* on homogeneous-fleet hours: for every
combination of per-site segment/inactive choices the continuous
remainder is a boxed transportation problem whose greedy solution is
optimal. These tests drive randomized fleets through the hot path
(kernel enabled) and the cold SciPy path and require matching
objectives and served totals — per-site splits may differ at alternate
optima. Bail-out cases (piecewise power models) must transparently
fall through to the MILP.
"""

import numpy as np
import pytest

from repro.core import (
    CostMinimizer,
    DispatchModelCache,
    SiteHour,
    ThroughputMaximizer,
)
from repro.core.enum_kernel import MAX_COMBOS, solve_cost_min
from repro.datacenter import AffinePower
from repro.powermarket import SteppedPricingPolicy
from repro.telemetry import Telemetry, use_telemetry

MARGIN = 0.01


def random_hours(rng, n_sites, piecewise=False):
    hours = []
    for i in range(n_sites):
        base = float(rng.uniform(5.0, 15.0))
        policy = SteppedPricingPolicy(
            f"s{i}",
            (float(rng.uniform(60.0, 140.0)), float(rng.uniform(150.0, 260.0))),
            (base, base * 2.0, base * 4.0),
        )
        slope = float(rng.uniform(0.3e-6, 0.8e-6))
        segments = None
        if piecewise:
            segments = ((1e7, slope * 0.5), (2e7, slope * 1.5))
        hours.append(
            SiteHour(
                name=f"s{i}",
                affine=AffinePower(slope, float(rng.uniform(0.0, 3.0))),
                policy=policy,
                background_mw=float(rng.uniform(10.0, 120.0)),
                power_cap_mw=float(rng.uniform(50.0, 1e4)),
                max_rate_rps=float(rng.uniform(0.5e7, 3e7)),
                power_segments=segments,
            )
        )
    return hours


def kernel_counts(tel):
    solved = tel.registry.counter("core.enum_kernel.solved").value
    bails = tel.registry.counter("core.enum_kernel.bail").value
    return solved, bails


class TestCostMinEquivalence:
    def test_randomized_fleets_match_scipy(self):
        rng = np.random.default_rng(5)
        tel = Telemetry()
        hot = CostMinimizer()
        cold = CostMinimizer(backend="scipy")
        with use_telemetry(tel):
            for trial in range(40):
                hours = random_hours(rng, int(rng.integers(2, 5)))
                lam = float(rng.uniform(0.2, 0.9)) * sum(
                    sh.max_rate_rps for sh in hours
                )
                d_hot = hot.solve(hours, lam)
                d_cold = cold.solve(hours, lam)
                assert d_hot.predicted_cost == pytest.approx(
                    d_cold.predicted_cost, rel=1e-8, abs=1e-9
                )
                assert sum(
                    a.rate_rps for a in d_hot.allocations
                ) == pytest.approx(lam, rel=1e-9)
        solved, bails = kernel_counts(tel)
        assert solved >= 30  # the kernel, not the MILP, answered

    def test_piecewise_sites_bail_to_milp(self):
        rng = np.random.default_rng(6)
        tel = Telemetry()
        hot = CostMinimizer()
        cold = CostMinimizer(backend="scipy")
        with use_telemetry(tel):
            for _ in range(5):
                hours = random_hours(rng, 2, piecewise=True)
                lam = 0.4 * sum(sh.max_rate_rps for sh in hours)
                d_hot = hot.solve(hours, lam)
                d_cold = cold.solve(hours, lam)
                assert d_hot.predicted_cost == pytest.approx(
                    d_cold.predicted_cost, rel=1e-8
                )
        solved, bails = kernel_counts(tel)
        assert solved == 0 and bails == 5

    def test_kernel_can_be_disabled(self):
        tel = Telemetry()
        hot = CostMinimizer(model_cache=DispatchModelCache(use_enum_kernel=False))
        rng = np.random.default_rng(7)
        hours = random_hours(rng, 3)
        lam = 0.5 * sum(sh.max_rate_rps for sh in hours)
        with use_telemetry(tel):
            hot.solve(hours, lam)
        solved, bails = kernel_counts(tel)
        assert solved == 0 and bails == 0


class TestThroughputMaxEquivalence:
    def test_randomized_fleets_match_scipy(self):
        rng = np.random.default_rng(8)
        tel = Telemetry()
        hot = ThroughputMaximizer()
        cold = ThroughputMaximizer(backend="scipy")
        with use_telemetry(tel):
            for trial in range(30):
                hours = random_hours(rng, int(rng.integers(2, 4)))
                offered = float(rng.uniform(0.3, 0.95)) * sum(
                    sh.max_rate_rps for sh in hours
                )
                anchor = CostMinimizer(backend="scipy").solve(hours, offered)
                budget = float(rng.uniform(0.4, 1.1)) * anchor.predicted_cost
                d_hot = hot.solve(hours, offered, budget)
                d_cold = cold.solve(hours, offered, budget)
                assert d_hot.served_total_rps == pytest.approx(
                    d_cold.served_total_rps, rel=1e-8, abs=1e-6
                )
                assert d_hot.predicted_cost <= budget * (1 + 1e-9)
        solved, _ = kernel_counts(tel)
        assert solved >= 20

    def test_tiny_budget_still_matches(self):
        rng = np.random.default_rng(9)
        hot = ThroughputMaximizer()
        cold = ThroughputMaximizer(backend="scipy")
        hours = random_hours(rng, 3)
        offered = 0.8 * sum(sh.max_rate_rps for sh in hours)
        d_hot = hot.solve(hours, offered, 10.0)
        d_cold = cold.solve(hours, offered, 10.0)
        assert d_hot.served_total_rps == pytest.approx(
            d_cold.served_total_rps, rel=1e-8, abs=1e-6
        )


class TestBailConditions:
    def test_combo_ceiling_bails(self):
        # 13 sites x 3+ choices each overflows MAX_COMBOS = 4096 only
        # beyond 7 sites (4^7 > 4096 with the inactive choice); verify
        # via the counter that large fleets run the MILP.
        rng = np.random.default_rng(10)
        tel = Telemetry()
        hot = CostMinimizer()
        hours = random_hours(rng, 13)
        lam = 0.5 * sum(sh.max_rate_rps for sh in hours)
        with use_telemetry(tel):
            d = hot.solve(hours, lam)
        cold = CostMinimizer(backend="scipy").solve(hours, lam)
        assert d.predicted_cost == pytest.approx(cold.predicted_cost, rel=1e-8)
        solved, bails = kernel_counts(tel)
        assert solved + bails == 1

    def test_infeasible_demand_is_milps_problem(self):
        rng = np.random.default_rng(12)
        hours = random_hours(rng, 2)
        entry_stub = None
        # Demand beyond total capacity: the kernel must decline rather
        # than fabricate an answer.
        total = sum(sh.max_rate_rps for sh in hours) / 1e6
        assert solve_cost_min(entry_stub, hours, total * 2.0, MARGIN) is None

    def test_max_combos_is_sane(self):
        assert MAX_COMBOS >= 256
