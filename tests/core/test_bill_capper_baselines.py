"""Tests for the two-step BillCapper and the Min-Only baselines."""

import pytest

from repro.core import (
    BillCapper,
    CappingStep,
    CostMinimizer,
    MinOnlyDispatcher,
    PriceMode,
)

from .conftest import site_hour, small_datacenter


@pytest.fixture
def capper():
    return BillCapper()


def _full_cost(sites, lam):
    return CostMinimizer().solve(sites, lam).predicted_cost


class TestBillCapper:
    def test_abundant_budget_uses_step1(self, three_sites, capper):
        lam = 3e7
        budget = _full_cost(three_sites, lam) * 2.0
        d = capper.decide(three_sites, lam * 0.8, lam * 0.2, budget)
        assert d.step is CappingStep.COST_MIN
        assert d.premium_fully_served
        assert d.ordinary_admission_rate == pytest.approx(1.0)

    def test_moderate_budget_throttles_ordinary_only(self, three_sites, capper):
        lam = 3e7
        full = _full_cost(three_sites, lam)
        premium_cost = _full_cost(three_sites, lam * 0.8)
        budget = (full + premium_cost) / 2  # enough for premium, not all
        d = capper.decide(three_sites, lam * 0.8, lam * 0.2, budget)
        assert d.step is CappingStep.THROUGHPUT_MAX
        assert d.premium_fully_served
        assert 0.0 <= d.ordinary_admission_rate < 1.0
        assert d.predicted_cost <= budget * (1 + 1e-6)

    def test_insufficient_budget_premium_only(self, three_sites, capper):
        lam = 3e7
        premium_cost = _full_cost(three_sites, lam * 0.8)
        budget = premium_cost * 0.5
        d = capper.decide(three_sites, lam * 0.8, lam * 0.2, budget)
        assert d.step is CappingStep.PREMIUM_ONLY
        assert d.premium_fully_served
        assert d.served_ordinary_rps == 0.0
        # The budget is knowingly violated for premium QoS.
        assert d.predicted_cost > budget

    def test_infinite_budget_never_throttles(self, three_sites, capper):
        d = capper.decide(three_sites, 2e7, 1e7, float("inf"))
        assert d.step is CappingStep.COST_MIN
        assert d.served_total_rps == pytest.approx(3e7)

    def test_sheds_beyond_capacity(self, three_sites, capper):
        cap = sum(s.max_rate_rps for s in three_sites)
        d = capper.decide(three_sites, cap * 0.9, cap * 0.5, float("inf"))
        assert d.served_total_rps <= cap * (1 + 1e-9)
        assert d.premium_fully_served  # premium clamped only after ordinary
        assert d.demand_ordinary_rps == cap * 0.5  # demand recorded unclamped

    def test_validation(self, three_sites, capper):
        with pytest.raises(ValueError):
            capper.decide(three_sites, -1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            capper.decide(three_sites, 0.0, 0.0, -1.0)

    def test_zero_demand(self, three_sites, capper):
        d = capper.decide(three_sites, 0.0, 0.0, 100.0)
        assert d.served_total_rps == 0.0
        assert d.predicted_cost == 0.0
        assert d.ordinary_admission_rate == 1.0  # vacuous

    def test_budget_recorded_on_decision(self, three_sites, capper):
        d = capper.decide(three_sites, 1e6, 1e6, 1234.5)
        assert d.budget == 1234.5


class TestStep2Reporting:
    """Regression: step 2 used to report ``served_premium = premium_rps``
    even when the maximizer's throughput landed a hair *below* the
    premium load (inside the 1e-9 acceptance tolerance), overstating
    premium service and pushing served_ordinary negative."""

    class _StubOptimizer:
        """Duck-typed optimizer returning a canned decision."""

        def __init__(self, decision):
            self.decision = decision

        def solve(self, site_hours, total_rate_rps, budget=None):
            return self.decision

    @staticmethod
    def _decision(served_total, cost):
        from repro.core import HourlyDecision

        return HourlyDecision(
            step=CappingStep.THROUGHPUT_MAX,
            allocations=(),
            served_premium_rps=served_total,
            served_ordinary_rps=0.0,
            demand_premium_rps=served_total,
            demand_ordinary_rps=0.0,
            predicted_cost=cost,
        )

    def test_served_premium_clamped_to_achieved_throughput(self):
        premium = 1e6
        achieved = premium * (1 - 5e-10)  # within tolerance, below demand
        capper = BillCapper(
            cost_minimizer=self._StubOptimizer(self._decision(premium, 1e9)),
            throughput_maximizer=self._StubOptimizer(
                self._decision(achieved, 10.0)
            ),
            shed_beyond_capacity=False,
        )
        d = capper.decide([], premium, 0.0, budget=100.0)
        assert d.step is CappingStep.THROUGHPUT_MAX
        assert d.served_premium_rps == pytest.approx(achieved, abs=0.0)
        assert d.served_premium_rps <= achieved
        assert d.served_ordinary_rps == 0.0

    def test_surplus_throughput_still_goes_to_ordinary(self):
        premium, ordinary = 1e6, 5e5
        capper = BillCapper(
            cost_minimizer=self._StubOptimizer(self._decision(premium, 1e9)),
            throughput_maximizer=self._StubOptimizer(
                self._decision(premium + 2e5, 10.0)
            ),
            shed_beyond_capacity=False,
        )
        d = capper.decide([], premium, ordinary, budget=100.0)
        assert d.served_premium_rps == pytest.approx(premium)
        assert d.served_ordinary_rps == pytest.approx(2e5)


class TestMinOnly:
    def _dispatcher(self, mode, sites):
        slopes = {s.name: 0.3e-6 for s in sites}  # server-only: below true slope
        return MinOnlyDispatcher(price_mode=mode, server_slopes=slopes)

    def test_serves_full_load_regardless(self, three_sites):
        lam = 3e7
        d = self._dispatcher(PriceMode.AVG, three_sites).solve(three_sites, lam)
        assert d.step is CappingStep.BASELINE
        assert sum(a.rate_rps for a in d.allocations) == pytest.approx(lam, rel=1e-9)

    def test_price_modes_differ(self, three_sites):
        d_avg = self._dispatcher(PriceMode.AVG, three_sites).solve(three_sites, 3e7)
        d_low = self._dispatcher(PriceMode.LOW, three_sites).solve(three_sites, 3e7)
        # Believed costs differ (avg prices > low prices).
        assert d_avg.predicted_cost > d_low.predicted_cost

    def test_constant_price_used(self, three_sites):
        sh = three_sites[0]
        assert PriceMode.AVG.constant_price(sh) == pytest.approx(
            sh.policy.average_price
        )
        assert PriceMode.LOW.constant_price(sh) == pytest.approx(
            sh.policy.lowest_price
        )

    def test_current_mode_observes_market(self, three_sites):
        # Extension: the best-informed price taker reads the price at
        # the current background demand.
        sh = three_sites[0]  # background 50, first step at 100
        assert PriceMode.CURRENT.constant_price(sh) == pytest.approx(
            sh.policy.price(sh.background_mw)
        )

    def test_current_mode_dispatches(self, three_sites):
        d = self._dispatcher(PriceMode.CURRENT, three_sites).solve(three_sites, 3e7)
        assert sum(a.rate_rps for a in d.allocations) == pytest.approx(3e7, rel=1e-9)

    def test_concentrates_on_believed_cheapest(self, three_sites):
        # With Min-Only (Low) all sites believe their lowest step price;
        # site C has the lowest (8.0): everything goes there (capacity permitting).
        d = self._dispatcher(PriceMode.LOW, three_sites).solve(three_sites, 1e7)
        assert d.rate_for("C") == pytest.approx(1e7, rel=1e-6)

    def test_missing_slope_rejected(self, three_sites):
        disp = MinOnlyDispatcher(price_mode=PriceMode.AVG, server_slopes={})
        with pytest.raises(KeyError):
            disp.solve(three_sites, 1e6)

    def test_negative_load_rejected(self, three_sites):
        with pytest.raises(ValueError):
            self._dispatcher(PriceMode.AVG, three_sites).solve(three_sites, -1.0)

    def test_server_only_slope_below_full_slope(self):
        from repro.core import server_only_affine_slope

        dc = small_datacenter()
        assert server_only_affine_slope(dc) < dc.affine_power().slope_mw_per_rps
