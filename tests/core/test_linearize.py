"""Tests for the stepped-cost MILP linearization.

Key invariant: minimizing the linearized cost of a *fixed* power level
must reproduce the direct policy evaluation exactly — the linearization
is exact, not a relaxation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import add_stepped_cost
from repro.powermarket import SteppedPricingPolicy, flat_policy
from repro.solver import Model

from .conftest import site_hour


def _linearized_cost_at(power_mw: float, site, p_max: float = 1000.0) -> float:
    """Solve a tiny MILP that pins the power and returns the cost."""
    m = Model("probe")
    p = m.var("p", lb=power_mw, ub=power_mw)
    lin = add_stepped_cost(m, p, site, max_power_mw=max(p_max, power_mw))
    m.minimize(lin.cost)
    res = m.solve(raise_on_failure=True)
    return res.objective


class TestExactness:
    @pytest.mark.parametrize("power", [0.0, 10.0, 49.9, 50.0, 120.0, 149.9, 150.0, 400.0])
    def test_matches_direct_evaluation(self, power):
        site = site_hour(background=50.0, max_rate=4e9)  # steps at 100, 200
        expected = site.policy.price(site.background_mw + power) * power
        got = _linearized_cost_at(power, site)
        assert got == pytest.approx(expected, rel=1e-6, abs=1e-6)

    def test_background_already_past_first_step(self):
        site = site_hour(background=150.0)  # market starts in level 1
        assert _linearized_cost_at(10.0, site) == pytest.approx(10.0 * 20.0)

    def test_background_past_all_steps(self):
        site = site_hour(background=300.0)  # only the last level reachable
        assert _linearized_cost_at(5.0, site) == pytest.approx(5.0 * 40.0)

    def test_flat_policy_single_segment(self):
        site = site_hour(policy=flat_policy("f", 13.0), background=10.0)
        m = Model("probe")
        p = m.var("p", lb=7.0, ub=7.0)
        lin = add_stepped_cost(m, p, site)
        assert len(lin.segment_active) == 1
        m.minimize(lin.cost)
        assert m.solve().objective == pytest.approx(91.0)

    @settings(max_examples=50, deadline=None)
    @given(
        background=st.floats(min_value=0.0, max_value=350.0),
        # Powers below the solver's feasibility tolerance (~1e-6 MW = 1 W)
        # legitimately round to zero; test physical magnitudes.
        power=st.one_of(st.just(0.0), st.floats(min_value=1e-3, max_value=300.0)),
    )
    def test_exactness_property(self, background, power):
        site = site_hour(background=background, max_rate=4e9)
        # Stay off the measure-zero breakpoints where the right-open
        # convention and the epsilon guard differ by design.
        for bp in site.policy.breakpoints:
            if abs(background + power - bp) < 1e-3:
                return
        expected = site.policy.price(background + power) * power
        got = _linearized_cost_at(power, site)
        assert got == pytest.approx(expected, rel=1e-6, abs=1e-5)


class TestSegmentStructure:
    def test_unreachable_low_segments_dropped(self):
        site = site_hour(background=150.0)  # first segment [0,100) unreachable
        m = Model("probe")
        p = m.var("p", lb=0.0, ub=100.0)
        lin = add_stepped_cost(m, p, site, max_power_mw=100.0)
        assert lin.prices == [20.0, 40.0]

    def test_segments_capped_by_max_power(self):
        site = site_hour(background=0.0, max_rate=1e6, slope=1e-6)  # max 1 MW
        m = Model("probe")
        p = m.var("p", lb=0.0, ub=1.0)
        lin = add_stepped_cost(m, p, site)
        assert lin.prices == [10.0]  # only the first level reachable

    def test_infinite_bound_rejected(self):
        site = site_hour()
        m = Model("probe")
        p = m.var("p", lb=0.0)
        with pytest.raises(ValueError, match="finite"):
            add_stepped_cost(m, p, site, max_power_mw=float("inf"))

    def test_minimizer_prefers_cheap_segment(self):
        # Free choice of power in [0, 60] with background 50: staying
        # below the 100 MW step keeps the price at 10.
        site = site_hour(background=50.0)
        m = Model("probe")
        p = m.var("p", lb=40.0, ub=60.0)
        lin = add_stepped_cost(m, p, site, max_power_mw=60.0)
        m.minimize(lin.cost)
        res = m.solve(raise_on_failure=True)
        # Optimal power is at most 50 (market load 100) and price level 0.
        assert res.value(p) <= 50.0 + 1e-6
        assert res.objective == pytest.approx(res.value(p) * 10.0, rel=1e-6)

    def test_exactly_one_segment_active(self):
        site = site_hour(background=50.0)
        m = Model("probe")
        p = m.var("p", lb=120.0, ub=120.0)
        lin = add_stepped_cost(m, p, site, max_power_mw=200.0)
        m.minimize(lin.cost)
        res = m.solve(raise_on_failure=True)
        actives = [round(res.value(y)) for y in lin.segment_active]
        assert sum(actives) == 1
