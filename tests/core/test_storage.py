"""Tests for the battery model and day-ahead storage planner."""

import numpy as np
import pytest

from repro.core import SiteHour, plan_storage_schedule
from repro.datacenter import AffinePower, Battery
from repro.powermarket import SteppedPricingPolicy


def make_battery(**overrides):
    kwargs = dict(
        capacity_mwh=10.0,
        max_charge_mw=5.0,
        max_discharge_mw=5.0,
        charge_efficiency=0.9,
        discharge_efficiency=0.9,
    )
    kwargs.update(overrides)
    return Battery(**kwargs)


def make_hours(backgrounds, policy=None, name="S"):
    policy = policy or SteppedPricingPolicy(name, (100.0,), (10.0, 30.0))
    return [
        SiteHour(
            name=name,
            affine=AffinePower(1e-6, 0.0),
            policy=policy,
            background_mw=bg,
            power_cap_mw=1e4,
            max_rate_rps=1e8,
        )
        for bg in backgrounds
    ]


class TestBatteryModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_battery(capacity_mwh=0.0)
        with pytest.raises(ValueError):
            make_battery(max_charge_mw=-1.0)
        with pytest.raises(ValueError):
            make_battery(charge_efficiency=1.5)

    def test_round_trip_efficiency(self):
        assert make_battery().round_trip_efficiency == pytest.approx(0.81)

    def test_charge_respects_limits(self):
        state = make_battery().initial_state(0.0)
        drawn = state.charge(100.0)  # limited to 5 MW
        assert drawn == pytest.approx(5.0)
        assert state.soc_mwh == pytest.approx(4.5)  # 5 * 0.9

    def test_charge_respects_headroom(self):
        state = make_battery().initial_state(1.0)  # full
        assert state.charge(5.0) == pytest.approx(0.0)

    def test_discharge_respects_soc(self):
        state = make_battery(capacity_mwh=1.0).initial_state(1.0)
        delivered = state.discharge(5.0)
        assert delivered == pytest.approx(0.9)  # 1 MWh * 0.9 out
        assert state.soc_mwh == pytest.approx(0.0)

    def test_state_fraction(self):
        state = make_battery().initial_state(0.25)
        assert state.soc_fraction == pytest.approx(0.25)

    def test_negative_power_rejected(self):
        state = make_battery().initial_state()
        with pytest.raises(ValueError):
            state.charge(-1.0)
        with pytest.raises(ValueError):
            state.discharge(-1.0)


class TestStoragePlanner:
    def test_flat_prices_no_arbitrage(self):
        # One price level: a lossy battery can only lose money by cycling.
        hours = make_hours([50.0] * 6, policy=SteppedPricingPolicy("S", (), (10.0,)))
        base = np.full(6, 20.0)
        plan = plan_storage_schedule(hours, base, make_battery())
        assert plan.planned_cost == pytest.approx(plan.baseline_cost, rel=1e-6)
        assert np.allclose(plan.charge_mw, 0.0, atol=1e-6)

    def test_step_arbitrage_saves_money(self):
        # Background swings across the 100 MW step: the planner shifts
        # energy from cheap to expensive hours even when it cannot fully
        # duck the step (every discharged MWh is bought at 10 instead
        # of 30).
        backgrounds = [40.0, 40.0, 95.0, 95.0, 40.0, 40.0]
        hours = make_hours(backgrounds)
        base = np.full(6, 20.0)
        plan = plan_storage_schedule(hours, base, make_battery())
        assert plan.planned_cost < plan.baseline_cost
        # Discharging concentrated in the expensive hours.
        assert plan.discharge_mw[2] + plan.discharge_mw[3] > 0.5
        assert plan.discharge_mw[[0, 1, 4, 5]].sum() == pytest.approx(0.0, abs=1e-6)

    def test_large_battery_ducks_below_the_step(self):
        # With enough power and energy the optimal plan pulls the
        # expensive hour's market load back under the breakpoint, so
        # the *entire* residual draw is billed at the cheap level.
        backgrounds = [40.0, 40.0, 95.0, 40.0, 40.0, 40.0]
        hours = make_hours(backgrounds)
        base = np.full(6, 20.0)
        big = make_battery(capacity_mwh=40.0, max_charge_mw=10.0, max_discharge_mw=20.0)
        plan = plan_storage_schedule(hours, base, big)
        assert backgrounds[2] + plan.grid_mw[2] <= 100.0 + 1e-6
        assert plan.planned_cost < plan.baseline_cost

    def test_energy_neutral(self):
        hours = make_hours([40.0, 95.0, 95.0, 40.0])
        plan = plan_storage_schedule(hours, np.full(4, 20.0), make_battery())
        assert plan.soc_mwh[-1] >= plan.soc_mwh[0] - 1e-6

    def test_soc_dynamics_consistent(self):
        hours = make_hours([40.0, 95.0, 95.0, 40.0])
        bat = make_battery()
        plan = plan_storage_schedule(hours, np.full(4, 20.0), bat)
        for t in range(4):
            expected = (
                plan.soc_mwh[t]
                + bat.charge_efficiency * plan.charge_mw[t]
                - plan.discharge_mw[t] / bat.discharge_efficiency
            )
            assert plan.soc_mwh[t + 1] == pytest.approx(expected, abs=1e-6)
        assert np.all(plan.soc_mwh <= bat.capacity_mwh + 1e-9)
        assert np.all(plan.soc_mwh >= -1e-9)

    def test_grid_draw_nonnegative_and_consistent(self):
        hours = make_hours([40.0, 95.0, 95.0, 40.0])
        base = np.full(4, 20.0)
        plan = plan_storage_schedule(hours, base, make_battery())
        assert np.all(plan.grid_mw >= -1e-9)
        assert np.allclose(
            plan.grid_mw, base + plan.charge_mw - plan.discharge_mw, atol=1e-6
        )

    def test_allow_net_depletion_when_relaxed(self):
        hours = make_hours([95.0, 95.0])
        plan = plan_storage_schedule(
            hours, np.full(2, 20.0), make_battery(), require_final_soc=False
        )
        # With no neutrality constraint it may drain the battery for free.
        assert plan.soc_mwh[-1] <= plan.soc_mwh[0] + 1e-9
        assert plan.planned_cost <= plan.baseline_cost + 1e-9

    def test_planned_saving_property(self):
        hours = make_hours([40.0, 95.0, 95.0, 40.0])
        plan = plan_storage_schedule(hours, np.full(4, 20.0), make_battery())
        assert 0.0 < plan.planned_saving < 1.0

    def test_validation(self):
        hours = make_hours([40.0])
        with pytest.raises(ValueError):
            plan_storage_schedule(hours, np.array([1.0, 2.0]), make_battery())
        with pytest.raises(ValueError):
            plan_storage_schedule(hours, np.array([-1.0]), make_battery())
        with pytest.raises(ValueError):
            plan_storage_schedule([], np.array([]), make_battery())


class TestEvaluateSchedule:
    def _plan(self, backgrounds, base=20.0):
        hours = make_hours(backgrounds)
        base_arr = np.full(len(backgrounds), base)
        return plan_storage_schedule(hours, base_arr, make_battery()), hours, base_arr

    def test_perfect_forecast_matches_plan(self):
        from repro.core import evaluate_schedule

        plan, hours, base = self._plan([40.0, 95.0, 95.0, 40.0])
        with_batt, without = evaluate_schedule(plan, hours, base)
        assert with_batt == pytest.approx(plan.planned_cost, rel=1e-6)
        assert without == pytest.approx(plan.baseline_cost, rel=1e-6)

    def test_moderate_forecast_error_preserves_savings(self):
        from repro.core import evaluate_schedule

        plan, _, base = self._plan([40.0, 95.0, 95.0, 40.0])
        # Reality: backgrounds shifted by a few MW (same shape).
        actual_hours = make_hours([43.0, 93.0, 96.0, 38.0])
        with_batt, without = evaluate_schedule(plan, actual_hours, base)
        assert with_batt < without

    def test_wrong_shape_forecast_can_lose(self):
        from repro.core import evaluate_schedule

        # Planned for an afternoon peak that actually happened overnight:
        # the plan discharges into cheap hours and charges into expensive
        # ones. It must never *gain* under the inverted reality.
        plan, _, base = self._plan([40.0, 95.0, 95.0, 40.0])
        inverted = make_hours([95.0, 40.0, 40.0, 95.0])
        with_batt, without = evaluate_schedule(plan, inverted, base)
        assert with_batt >= without * 0.999

    def test_horizon_mismatch_rejected(self):
        from repro.core import evaluate_schedule

        plan, hours, base = self._plan([40.0, 95.0])
        with pytest.raises(ValueError):
            evaluate_schedule(plan, hours, np.array([20.0]))
