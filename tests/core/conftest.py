"""Shared fixtures for core-algorithm tests: a small, fast 3-site world."""

import numpy as np
import pytest

from repro.core import Site, SiteHour
from repro.datacenter import (
    AffinePower,
    CoolingModel,
    DataCenter,
    ServerSpec,
    SwitchPowers,
)
from repro.powermarket import SteppedPricingPolicy, flat_policy


def small_datacenter(name="DC", service_rate=500.0, power_at_op=88.88, coe=1.94,
                     max_servers=50_000, power_cap_mw=float("inf")):
    return DataCenter(
        name=name,
        servers=ServerSpec.from_operating_point(name + "-srv", power_at_op, service_rate),
        max_servers=max_servers,
        switch_powers=SwitchPowers(184.0, 184.0, 240.0),
        cooling=CoolingModel(coe),
        target_response_s=0.5,
        power_cap_mw=power_cap_mw,
    )


def site_hour(
    name="S",
    slope=0.5e-6,  # MW per rps
    intercept=0.0,
    policy=None,
    background=50.0,
    power_cap=float("inf"),
    max_rate=2e7,
):
    """A hand-tuned SiteHour with a simple affine power model."""
    policy = policy or SteppedPricingPolicy(
        name, (100.0, 200.0), (10.0, 20.0, 40.0)
    )
    cap = power_cap if power_cap < float("inf") else 1e4
    return SiteHour(
        name=name,
        affine=AffinePower(slope, intercept),
        policy=policy,
        background_mw=background,
        power_cap_mw=cap,
        max_rate_rps=max_rate,
    )


@pytest.fixture
def three_sites():
    """Three sites with distinct stepped policies and headroom to the
    first breakpoint of 50/60/70 MW respectively."""
    pol = lambda n, p1: SteppedPricingPolicy(n, (100.0, 200.0), (p1, p1 * 2, p1 * 4))
    return [
        site_hour("A", slope=0.5e-6, policy=pol("A", 10.0), background=50.0),
        site_hour("B", slope=0.4e-6, policy=pol("B", 12.0), background=40.0),
        site_hour("C", slope=0.6e-6, policy=pol("C", 8.0), background=30.0),
    ]
