"""Tests for the monthly -> hourly budgeter."""

import numpy as np
import pytest

from repro.core import Budgeter
from repro.workload import HOURS_PER_WEEK, HourOfWeekPredictor, Trace, wikipedia_like_trace


def _predictor(seed=0, weeks=4):
    return HourOfWeekPredictor(
        wikipedia_like_trace(HOURS_PER_WEEK * weeks, 1e6, seed=seed, start_weekday=0)
    )


def _flat_predictor():
    return HourOfWeekPredictor(Trace(np.full(HOURS_PER_WEEK, 100.0)))


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            Budgeter(-1.0, _flat_predictor())
        with pytest.raises(ValueError):
            Budgeter(100.0, _flat_predictor(), month_hours=0)


class TestBaseAllocation:
    def test_base_budgets_sum_to_monthly(self):
        b = Budgeter(720.0, _predictor(), month_hours=720)
        total = sum(b.base_budget(h) for h in range(720))
        assert total == pytest.approx(720.0)

    def test_flat_history_uniform_budgets(self):
        b = Budgeter(720.0, _flat_predictor(), month_hours=720)
        assert b.base_budget(0) == pytest.approx(1.0)
        assert b.base_budget(500) == pytest.approx(1.0)

    def test_busy_hours_get_bigger_budgets(self):
        pred = _predictor()
        b = Budgeter(1000.0, pred, month_hours=720, start_weekday=0)
        profile = pred.weekly_profile()
        busy = int(np.argmax(profile))
        quiet = int(np.argmin(profile))
        assert b.base_budget(busy) > b.base_budget(quiet)


class TestCarryover:
    def test_unused_budget_rolls_forward(self):
        b = Budgeter(240.0, _flat_predictor(), month_hours=240)
        first = b.hourly_budget()
        b.record_spend(0.0)  # spend nothing
        second = b.hourly_budget()
        assert second == pytest.approx(first + b.base_budget(1))

    def test_budget_grows_within_week_under_underspend(self):
        b = Budgeter(720.0, _flat_predictor(), month_hours=720)
        budgets = []
        for _ in range(100):
            budgets.append(b.hourly_budget())
            b.record_spend(budgets[-1] * 0.5)  # spend half each hour
        assert budgets[-1] > budgets[0]  # Figure 6's growing staircase

    def test_carryover_resets_at_week_boundary(self):
        b = Budgeter(float(HOURS_PER_WEEK * 2), _flat_predictor(),
                     month_hours=HOURS_PER_WEEK * 2, start_weekday=0)
        for _ in range(HOURS_PER_WEEK):
            b.hourly_budget()
            b.record_spend(0.0)  # accumulate a full week of carryover
        # First hour of week 2: back to the base allocation.
        assert b.hourly_budget() == pytest.approx(b.base_budget(HOURS_PER_WEEK))

    def test_week_boundary_respects_start_weekday(self):
        # Starting Thursday (3): the calendar week ends after 4 days = 96 h.
        b = Budgeter(1000.0, _flat_predictor(), month_hours=300, start_weekday=3)
        for _ in range(96):
            b.hourly_budget()
            b.record_spend(0.0)
        assert b.hourly_budget() == pytest.approx(b.base_budget(96))

    def test_overspend_absorbed_by_default(self):
        # Paper behaviour: only *unused* budget carries over; an
        # overspent (mandatory-premium) hour does not starve later hours.
        b = Budgeter(240.0, _flat_predictor(), month_hours=240)
        first = b.hourly_budget()
        b.record_spend(first * 3.0)
        assert b.hourly_budget() == pytest.approx(b.base_budget(1))

    def test_overspend_claw_back_option(self):
        b = Budgeter(240.0, _flat_predictor(), month_hours=240,
                     claw_back_deficit=True)
        first = b.hourly_budget()
        b.record_spend(first * 3.0)  # forced violation (premium-only hour)
        # Next budget is reduced (possibly to zero) by the deficit.
        assert b.hourly_budget() < b.base_budget(1)
        assert b.hourly_budget() >= 0.0

    def test_claw_back_carry_matches_handed_budget(self):
        # Regression: record_spend used to compute its `available` figure
        # without the zero floor hourly_budget() applies, so a deep
        # deficit kept accruing against budgets the capper never saw.
        b = Budgeter(240.0, _flat_predictor(), month_hours=240,
                     claw_back_deficit=True)
        b.hourly_budget()
        b.record_spend(10.0)  # deficit worth several base budgets
        assert b.hourly_budget() == 0.0  # clawed all the way back
        b.record_spend(0.0)  # spent exactly what was handed
        # Nothing was over- or under-spent against the handed (floored)
        # budget, so the next hour is back to its base allocation.
        assert b.hourly_budget() == pytest.approx(b.base_budget(2))

    def test_claw_back_overspend_measured_against_handed_budget(self):
        b = Budgeter(480.0, _flat_predictor(), month_hours=240,
                     claw_back_deficit=True)  # base budget 2.0/hour
        b.hourly_budget()
        b.record_spend(10.0)
        assert b.hourly_budget() == 0.0
        b.record_spend(1.0)  # premium-only hour violating the zero budget
        # Only that $1 overspend carries forward, not the stale deficit.
        assert b.hourly_budget() == pytest.approx(b.base_budget(2) - 1.0)

    def test_carryover_disabled(self):
        b = Budgeter(240.0, _flat_predictor(), month_hours=240, carryover=False)
        b.hourly_budget()
        b.record_spend(0.0)
        assert b.hourly_budget() == pytest.approx(b.base_budget(1))


class TestAccounting:
    def test_spend_tracking(self):
        b = Budgeter(100.0, _flat_predictor(), month_hours=10)
        b.hourly_budget()
        b.record_spend(3.0)
        b.hourly_budget()
        b.record_spend(4.0)
        assert b.total_spent == pytest.approx(7.0)
        assert b.remaining_budget == pytest.approx(93.0)
        assert b.spent_through(1) == pytest.approx(3.0)
        assert b.current_hour == 2

    def test_exhaustion_guard(self):
        b = Budgeter(10.0, _flat_predictor(), month_hours=2)
        for _ in range(2):
            b.hourly_budget()
            b.record_spend(1.0)
        with pytest.raises(RuntimeError):
            b.hourly_budget()
        with pytest.raises(RuntimeError):
            b.record_spend(1.0)

    def test_negative_cost_rejected(self):
        b = Budgeter(10.0, _flat_predictor(), month_hours=2)
        with pytest.raises(ValueError):
            b.record_spend(-1.0)
