"""Tests for Site / SiteHour."""

import numpy as np
import pytest

from repro.core import Site, SiteHour
from repro.datacenter import AffinePower
from repro.powermarket import SteppedPricingPolicy

from .conftest import site_hour, small_datacenter


class TestSiteHour:
    def test_validation(self):
        with pytest.raises(ValueError):
            site_hour(background=-1.0)
        with pytest.raises(ValueError):
            SiteHour(
                "s", AffinePower(1e-6, 0.0),
                SteppedPricingPolicy("s", (), (10.0,)), 0.0, 0.0, 1.0,
            )

    def test_max_power_is_min_of_cap_and_capacity(self):
        sh = site_hour(slope=1e-6, max_rate=1e6, power_cap=100.0)
        assert sh.max_power_mw == pytest.approx(1.0)  # capacity-bound
        sh2 = site_hour(slope=1e-6, max_rate=1e9, power_cap=100.0)
        assert sh2.max_power_mw == pytest.approx(100.0)  # cap-bound

    def test_marginal_price_includes_background(self):
        sh = site_hour(background=90.0)  # policy steps at 100, 200
        assert sh.marginal_price(5.0) == 10.0
        assert sh.marginal_price(15.0) == 20.0  # pushes market over 100
        assert sh.marginal_price(115.0) == 40.0

    def test_cost_of_power(self):
        sh = site_hour(background=50.0)
        assert sh.cost_of_power(10.0) == pytest.approx(100.0)  # 10 MW x $10


class TestSite:
    def _site(self, hours=48):
        dc = small_datacenter()
        policy = SteppedPricingPolicy("B", (100.0, 200.0), (10.0, 20.0, 40.0))
        bg = np.full(hours, 80.0)
        return Site(dc, policy, bg)

    def test_validation(self):
        dc = small_datacenter()
        policy = SteppedPricingPolicy("B", (100.0,), (10.0, 20.0))
        with pytest.raises(ValueError):
            Site(dc, policy, np.array([]))
        with pytest.raises(ValueError):
            Site(dc, policy, np.array([1.0, -2.0]))

    def test_hour_snapshot(self):
        site = self._site()
        sh = site.hour(5)
        assert sh.name == site.name
        assert sh.background_mw == 80.0
        assert sh.max_rate_rps > 0

    def test_hour_out_of_range(self):
        with pytest.raises(IndexError):
            self._site(24).hour(24)

    def test_evaluate_hour_consistency(self):
        site = self._site()
        lam = 1e6
        power, price, cost = site.evaluate_hour(0, lam)
        assert power == pytest.approx(site.datacenter.power_mw(lam))
        assert price == site.policy.price(80.0 + power)
        assert cost == pytest.approx(price * power)

    def test_evaluate_hour_zero_load(self):
        power, price, cost = self._site().evaluate_hour(0, 0.0)
        assert power == 0.0 and cost == 0.0
