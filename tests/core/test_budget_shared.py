"""Shared budget math + randomized budgeter invariants.

The zero-floored ``available`` / claw-back logic used to be duplicated
between :mod:`repro.core.budgeter` and
:mod:`repro.core.robust_budgeter`; both now route through the shared
helpers (:func:`month_weights`, :func:`available_budget`,
:func:`clawed_back_carry`). The regression tests pin each consumer's
observable behaviour through the shared path; the property tests drive
randomized spend sequences through carry, claw-back and
checkpoint/restore and assert the published budgets never drift.
"""

import random

import numpy as np
import pytest

from repro.core import AdaptiveBudgeter, Budgeter
from repro.core.budgeter import (
    available_budget,
    clawed_back_carry,
    month_weights,
)
from repro.workload import (
    HOURS_PER_WEEK,
    HourOfWeekPredictor,
    Trace,
    wikipedia_like_trace,
)


def _predictor(seed=0, weeks=4):
    return HourOfWeekPredictor(
        wikipedia_like_trace(
            HOURS_PER_WEEK * weeks, 1e6, seed=seed, start_weekday=0
        )
    )


def _flat_predictor():
    return HourOfWeekPredictor(Trace(np.full(HOURS_PER_WEEK, 100.0)))


class TestSharedHelpers:
    def test_month_weights_sum_to_one(self):
        w = month_weights(_predictor(), 720, start_weekday=3)
        assert w.shape == (720,)
        assert w.sum() == pytest.approx(1.0)

    def test_month_weights_zero_profile_uniform(self):
        pred = HourOfWeekPredictor(Trace(np.zeros(HOURS_PER_WEEK)))
        w = month_weights(pred, 10, start_weekday=0)
        np.testing.assert_allclose(w, 0.1)

    def test_both_budgeters_use_identical_weights(self):
        pred = _predictor(seed=3)
        plain = Budgeter(500.0, pred, month_hours=400, start_weekday=2)
        adaptive = AdaptiveBudgeter(
            500.0, pred, month_hours=400, start_weekday=2
        )
        np.testing.assert_array_equal(plain._weights, adaptive._weights)

    def test_available_budget_floor(self):
        assert available_budget(2.0, 3.0, carryover=True) == 5.0
        assert available_budget(2.0, 3.0, carryover=False) == 2.0
        assert available_budget(2.0, -10.0, carryover=True) == 0.0
        assert available_budget(-1.0, 0.0, carryover=False) == 0.0

    def test_clawed_back_carry(self):
        assert clawed_back_carry(5.0, 2.0, claw_back_deficit=False) == 3.0
        assert clawed_back_carry(5.0, 2.0, claw_back_deficit=True) == 3.0
        # Deficit forgotten by default, kept under claw-back.
        assert clawed_back_carry(5.0, 9.0, claw_back_deficit=False) == 0.0
        assert clawed_back_carry(5.0, 9.0, claw_back_deficit=True) == -4.0


class TestPinnedConsumerBehaviour:
    """Regression pins: the dedupe must not change either budgeter."""

    def test_plain_budgeter_floor_and_claw_back(self):
        # Pinned from the pre-dedupe implementation: a deep deficit is
        # measured against the floored budget the capper was handed.
        b = Budgeter(240.0, _flat_predictor(), month_hours=240,
                     claw_back_deficit=True)  # base 1.0/hour
        assert b.hourly_budget() == 1.0
        b.record_spend(10.0)          # deficit of 9
        assert b.hourly_budget() == 0.0
        b.record_spend(0.0)           # spent exactly the floored 0
        assert b.hourly_budget() == pytest.approx(b.base_budget(2))

    def test_plain_budgeter_default_forgets_deficit(self):
        b = Budgeter(240.0, _flat_predictor(), month_hours=240)
        first = b.hourly_budget()
        b.record_spend(first * 3.0)
        assert b.hourly_budget() == pytest.approx(b.base_budget(1))

    def test_adaptive_budgeter_floor(self):
        # Overdraw the pool: the published budget floors at zero
        # through the same shared helper.
        b = AdaptiveBudgeter(10.0, _flat_predictor(), month_hours=10,
                             reserve_fraction=0.0)
        b.hourly_budget()
        b.record_spend(50.0)  # forced premium overspend past the pool
        assert b.hourly_budget() == 0.0

    def test_adaptive_budgeter_renormalizes(self):
        b = AdaptiveBudgeter(100.0, _flat_predictor(), month_hours=10,
                             reserve_fraction=0.0)
        first = b.hourly_budget()
        assert first == pytest.approx(10.0)
        b.record_spend(0.0)
        # Unspent budget re-spreads over the 9 remaining hours.
        assert b.hourly_budget() == pytest.approx(100.0 / 9)


class TestBudgeterProperties:
    """Randomized spend sequences; seeded random, no external deps."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("claw_back", [False, True])
    @pytest.mark.parametrize("carryover", [False, True])
    def test_checkpoint_restore_mid_sequence_never_drifts(
        self, seed, claw_back, carryover
    ):
        """Restore at every hour: the restored budgeter's published
        budget equals the original's exactly for the rest of the month
        (weights, spend, carry and position all round-trip)."""
        rng = random.Random(seed)
        hours = 60
        b = Budgeter(120.0, _predictor(seed=seed), month_hours=hours,
                     start_weekday=rng.randrange(7),
                     carryover=carryover, claw_back_deficit=claw_back)
        for _ in range(hours):
            budget = b.hourly_budget()
            clone = Budgeter.restore(b.checkpoint())
            assert clone.hourly_budget() == budget
            # Overspends (premium-only hours) included: up to 3x budget.
            spend = rng.uniform(0.0, max(budget, b.base_budget(0)) * 3.0)
            b.record_spend(spend)
            clone.record_spend(spend)
            assert clone._carry == b._carry
            assert clone.total_spent == b.total_spent

    @pytest.mark.parametrize("seed", range(8))
    def test_budgets_never_negative_and_bounded(self, seed):
        rng = random.Random(1000 + seed)
        hours = HOURS_PER_WEEK  # one full carry window
        b = Budgeter(200.0, _predictor(seed=seed), month_hours=hours,
                     claw_back_deficit=bool(seed % 2))
        for h in range(hours):
            budget = b.hourly_budget()
            assert budget >= 0.0
            # Within one carry window the budget can never exceed the
            # cumulative base allocations (carry only moves money
            # forward; it never mints any).
            assert budget <= sum(
                b.base_budget(i) for i in range(h + 1)
            ) + 1e-9
            b.record_spend(rng.uniform(0.0, budget * 1.5))

    @pytest.mark.parametrize("seed", range(4))
    def test_carry_claw_back_restore_roundtrip_tolerance(self, seed):
        """The ISSUE's invariant: carry + claw-back + checkpoint/restore
        round-trips never change hourly_budget by more than float
        tolerance under randomized spends (here: exactly equal)."""
        rng = random.Random(7 + seed)
        b = Budgeter(500.0, _predictor(seed=seed), month_hours=200,
                     claw_back_deficit=True)
        for _ in range(200):
            before = b.hourly_budget()
            b = Budgeter.restore(b.checkpoint())  # round-trip every hour
            after = b.hourly_budget()
            assert after == pytest.approx(before, abs=0.0, rel=0.0)
            b.record_spend(rng.uniform(0.0, before * 2.0 + 1.0))

    @pytest.mark.parametrize("seed", range(4))
    def test_adaptive_total_allocation_respects_monthly(self, seed):
        """Spending exactly the published budget every hour never
        allocates more than the monthly total (reserve included)."""
        rng = random.Random(99 + seed)
        b = AdaptiveBudgeter(
            300.0, _predictor(seed=seed), month_hours=100,
            reserve_fraction=rng.choice([0.0, 0.05, 0.2]),
            release_hours=rng.choice([10, 50, 100]),
        )
        total = 0.0
        for _ in range(100):
            budget = b.hourly_budget()
            assert budget >= 0.0
            b.record_spend(budget)
            total += budget
        assert total <= 300.0 * (1 + 1e-9)
