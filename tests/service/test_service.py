"""Tests for the asyncio service shell: determinism, resume, HTTP API.

HTTP checks use raw ``asyncio.open_connection`` GETs from inside the
same event loop — a blocking client (urllib) would deadlock, since the
server shares the loop.
"""

import asyncio
import json

import pytest

from repro.experiments import paper_world
from repro.service import (
    ControlLoop,
    ControlPlaneService,
    TriggerPolicy,
    bursty_ticks,
    load_service_checkpoint,
    restore_loop,
    run_serial,
    truncate_jsonl,
)
from repro.sim.engine import Engine


@pytest.fixture(scope="module")
def world():
    return paper_world(policy_id=1, seed=7)


@pytest.fixture(scope="module")
def engine(world):
    return Engine(world.sites, world.workload, world.mix)


@pytest.fixture(scope="module")
def ticks(world):
    return bursty_ticks(
        world.workload,
        ticks_per_hour=6,
        hours=3,
        ca2=4.0,
        price_jitter=0.05,
        sites=tuple(s.name for s in world.sites),
        seed=2,
    )


def _loop(world, engine, hours=3):
    return ControlLoop(
        engine,
        "capping",
        trigger=TriggerPolicy(debounce_s=120.0, max_staleness_s=900.0),
        budgeter=world.budgeter(2_000_000.0),
        hours=hours,
    )


async def _get(port: int, path: str) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    # Connection: close — the server defaults to keep-alive for
    # HTTP/1.1, and this helper reads to EOF.
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: x\r\n"
        "Connection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body)


class TestDeterminism:
    def test_async_log_matches_serial_reference(
        self, world, engine, ticks, tmp_path
    ):
        reference = [e.to_json() for e in run_serial(_loop(world, engine), ticks)]
        log = tmp_path / "decisions.jsonl"
        service = ControlPlaneService(
            _loop(world, engine),
            ticks,
            http=False,
            decision_log=log,
            handle_signals=False,
        )
        summary = asyncio.run(service.run())
        assert log.read_text().splitlines() == reference
        assert summary["decisions"] == len(reference)

    def test_decision_log_lines_are_json(self, world, engine, ticks, tmp_path):
        log = tmp_path / "decisions.jsonl"
        service = ControlPlaneService(
            _loop(world, engine),
            ticks,
            http=False,
            decision_log=log,
            handle_signals=False,
        )
        asyncio.run(service.run())
        for line in log.read_text().splitlines():
            event = json.loads(line)
            assert {"seq", "hour", "reason", "allocations"} <= event.keys()


class TestKillResume:
    def test_merged_log_matches_uninterrupted(
        self, world, engine, ticks, tmp_path
    ):
        reference = [e.to_json() for e in run_serial(_loop(world, engine), ticks)]
        log = tmp_path / "decisions.jsonl"
        ckpt = tmp_path / "ckpt.json"
        cut = len(ticks) * 2 // 3
        service = ControlPlaneService(
            _loop(world, engine),
            ticks,
            http=False,
            decision_log=log,
            checkpoint_path=ckpt,
            handle_signals=False,
        )

        async def killed_run():
            async def killer():
                while service.ticks_processed < cut:
                    await asyncio.sleep(0)
                service.request_stop()

            await asyncio.gather(service.run(), killer())

        asyncio.run(killed_run())
        assert service.stop_requested
        assert service.checkpoints_written >= 1

        payload = load_service_checkpoint(ckpt)
        kept = truncate_jsonl(log, payload["decisions_logged"])
        assert kept == payload["decisions_logged"]
        resumed = ControlPlaneService(
            restore_loop(engine, payload),
            ticks,
            http=False,
            decision_log=log,
            checkpoint_path=ckpt,
            start_tick=payload["next_tick"],
            decisions_logged=payload["decisions_logged"],
            handle_signals=False,
        )
        asyncio.run(resumed.run())
        assert log.read_text().splitlines() == reference

    def test_checkpoint_payload_shape(self, world, engine, ticks, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        service = ControlPlaneService(
            _loop(world, engine),
            ticks,
            http=False,
            checkpoint_path=ckpt,
            handle_signals=False,
        )
        asyncio.run(service.run())
        payload = load_service_checkpoint(ckpt)
        assert payload["kind"] == "service-run"
        assert {"next_tick", "decisions_logged", "loop", "trigger"} <= payload.keys()

    def test_load_rejects_wrong_kind(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "engine-run", "version": 1}))
        with pytest.raises(ValueError):
            load_service_checkpoint(bad)


class TestTruncateJsonl:
    def test_truncates_to_exact_line_count(self, tmp_path):
        p = tmp_path / "log.jsonl"
        p.write_text("a\nb\nc\n")
        assert truncate_jsonl(p, 2) == 2
        assert p.read_text() == "a\nb\n"

    def test_missing_log_with_lines_expected_errors(self, tmp_path):
        with pytest.raises((OSError, ValueError)):
            truncate_jsonl(tmp_path / "absent.jsonl", 3)

    def test_shorter_than_expected_errors(self, tmp_path):
        p = tmp_path / "log.jsonl"
        p.write_text("a\n")
        with pytest.raises(ValueError):
            truncate_jsonl(p, 5)

    def test_zero_keep_creates_empty_log(self, tmp_path):
        p = tmp_path / "absent.jsonl"
        assert truncate_jsonl(p, 0) == 0
        assert p.exists() and p.read_text() == ""


class TestHttpApi:
    def test_endpoints_respond_during_run(self, world, engine, ticks, tmp_path):
        service = ControlPlaneService(
            _loop(world, engine),
            ticks,
            port=0,
            decision_log=tmp_path / "d.jsonl",
            pace_s_per_hour=30.0,  # slow enough to poll mid-run
            handle_signals=False,
        )

        async def drive():
            run = asyncio.ensure_future(service.run())
            while service.decisions_published == 0 and not run.done():
                await asyncio.sleep(0.01)
            assert service.port is not None
            status, health = await _get(service.port, "/healthz")
            assert status == 200
            status, state = await _get(service.port, "/status")
            assert status == 200
            assert state["strategy"]
            assert state["ticks_processed"] >= 1
            status, decision = await _get(service.port, "/decision")
            assert status == 200
            assert decision["allocations"]
            status, routing = await _get(service.port, "/routing")
            assert status in (200, 404)  # 404 only if no DNS wired
            status, missing = await _get(service.port, "/nope")
            assert status == 404
            assert "/status" in missing["routes"]
            service.request_stop()
            await run

        asyncio.run(drive())


class TestSseMode:
    def test_long_poll_and_stream_serve_published_decisions(
        self, world, engine, ticks, tmp_path
    ):
        service = ControlPlaneService(
            _loop(world, engine),
            ticks,
            port=0,
            decision_log=tmp_path / "d.jsonl",
            pace_s_per_hour=30.0,
            handle_signals=False,
            sse=True,
        )

        async def drive():
            run = asyncio.ensure_future(service.run())
            while service.decisions_published == 0 and not run.done():
                await asyncio.sleep(0.01)
            # Bare /decision keeps the poll semantics, plus pub_seq.
            status, latest = await _get(service.port, "/decision")
            assert status == 200
            assert latest["pub_seq"] >= 1
            # Long-poll: the next decision past the current cursor.
            status, nxt = await _get(
                service.port,
                f"/decision?since={latest['pub_seq']}&wait_s=30",
            )
            assert status == 200
            assert nxt.get("timeout") or nxt["pub_seq"] > latest["pub_seq"]
            # SSE: subscribe and read at least one live frame.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            writer.write(
                b"GET /decisions/stream HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"text/event-stream" in head
            frame = await asyncio.wait_for(
                reader.readuntil(b"\n\n"), timeout=30.0
            )
            assert frame.startswith(b"id: ")
            assert b'"pub_seq"' in frame
            writer.close()
            await writer.wait_closed()
            service.request_stop()
            await run

        asyncio.run(drive())
