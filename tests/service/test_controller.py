"""Tests for the pure synchronous control loop and its trigger policy."""

import pytest

from repro.experiments import paper_world
from repro.service import ControlLoop, Tick, TriggerPolicy, run_serial, replay_ticks
from repro.sim.engine import Engine

HOUR = 3600.0


@pytest.fixture(scope="module")
def world():
    return paper_world(policy_id=1, seed=7)


@pytest.fixture(scope="module")
def engine(world):
    return Engine(world.sites, world.workload, world.mix)


def _loop(world, engine, hours=2, **trigger_kw):
    trigger = TriggerPolicy(**trigger_kw) if trigger_kw else TriggerPolicy()
    return ControlLoop(
        engine,
        "capping",
        trigger=trigger,
        budgeter=world.budgeter(2_000_000.0),
        hours=hours,
    )


def _lam(seq, time_s, value):
    return Tick(seq=seq, time_s=time_s, kind="lambda", value=value)


class TestTriggerPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            TriggerPolicy(max_staleness_s=60.0, debounce_s=120.0)
        with pytest.raises(ValueError):
            TriggerPolicy(lambda_delta=-0.1)

    def test_hour_start_always_dispatches(self, world, engine):
        loop = _loop(world, engine)
        events = loop.on_tick(_lam(0, 0.0, 100.0))
        assert [e.reason for e in events] == ["hour-start"]

    def test_delta_exactly_at_threshold_fires(self, world, engine):
        # >= comparison: a relative delta of exactly lambda_delta fires.
        loop = _loop(world, engine, lambda_delta=0.10, debounce_s=60.0)
        loop.on_tick(_lam(0, 0.0, 100.0))
        events = loop.on_tick(_lam(1, 100.0, 110.0))
        assert [e.reason for e in events] == ["lambda-delta"]

    def test_delta_below_threshold_holds(self, world, engine):
        loop = _loop(world, engine, lambda_delta=0.10, debounce_s=60.0)
        loop.on_tick(_lam(0, 0.0, 100.0))
        assert loop.on_tick(_lam(1, 100.0, 109.9)) == ()

    def test_bursts_inside_debounce_coalesce(self, world, engine):
        # Three huge swings inside the debounce window produce zero
        # dispatches; the first tick past the window, measured against
        # the last *dispatched* state, fires once.
        loop = _loop(world, engine, lambda_delta=0.05, debounce_s=300.0)
        loop.on_tick(_lam(0, 0.0, 100.0))
        for seq, t in enumerate((60.0, 120.0, 180.0), start=1):
            assert loop.on_tick(_lam(seq, t, 100.0 + 50.0 * seq)) == ()
        events = loop.on_tick(_lam(4, 301.0, 250.0))
        assert [e.reason for e in events] == ["lambda-delta"]
        assert loop.decisions == 2

    def test_staleness_deadline_fires_on_quiet_stream(self, world, engine):
        loop = _loop(
            world, engine, lambda_delta=0.5, debounce_s=60.0, max_staleness_s=900.0
        )
        loop.on_tick(_lam(0, 0.0, 100.0))
        assert loop.on_tick(_lam(1, 400.0, 101.0)) == ()
        assert loop.on_tick(_lam(2, 899.0, 101.0)) == ()
        events = loop.on_tick(_lam(3, 900.0, 101.0))
        assert [e.reason for e in events] == ["staleness"]

    def test_price_tick_can_trigger_redispatch(self, world, engine):
        site = engine.sites[0].name
        loop = _loop(world, engine, price_delta=0.10, debounce_s=60.0)
        loop.on_tick(_lam(0, 0.0, 100.0))
        events = loop.on_tick(
            Tick(seq=1, time_s=100.0, kind="price", value=1.5, site=site)
        )
        assert [e.reason for e in events] == ["price-delta"]

    def test_time_going_backwards_rejected(self, world, engine):
        loop = _loop(world, engine)
        loop.on_tick(_lam(0, 100.0, 100.0))
        with pytest.raises(ValueError):
            loop.on_tick(_lam(1, 99.0, 100.0))


class TestSettlement:
    def test_hours_settle_and_costs_accrue(self, world, engine):
        loop = _loop(world, engine, hours=2)
        ticks = replay_ticks(world.workload, ticks_per_hour=4, hours=2, seed=0)
        events = run_serial(loop, ticks)
        assert loop.finished or loop.hour == 1
        loop.finish()
        assert len(loop.hour_summaries) == 2
        assert all(s["realized_cost"] > 0 for s in loop.hour_summaries)
        assert events[0].reason == "hour-start"

    def test_summary_totals_match_settled_hours(self, world, engine):
        loop = _loop(world, engine, hours=2)
        run_serial(loop, replay_ticks(world.workload, ticks_per_hour=4, hours=2))
        loop.finish()
        s = loop.summary()
        total = sum(h["realized_cost"] for h in loop.hour_summaries)
        assert s["total_cost"] == pytest.approx(total)
        assert s["hours"] == 2

    def test_sparse_stream_settles_skipped_hours(self, world, engine):
        # One tick in hour 0 and one in hour 3: the catch-up loop must
        # settle hours 1 and 2 with the in-force decision.
        loop = _loop(world, engine, hours=4)
        loop.on_tick(_lam(0, 0.0, 100.0))
        loop.on_tick(_lam(1, 3 * HOUR, 100.0))
        loop.finish()
        assert len(loop.hour_summaries) == 4


class TestStateRoundTrip:
    def test_state_dict_resumes_identically(self, world, engine):
        ticks = replay_ticks(
            world.workload, ticks_per_hour=6, hours=3, jitter=0.1, seed=4
        )
        full = _loop(world, engine, hours=3)
        reference = [e.to_json() for e in run_serial(full, ticks)]
        full.finish()

        # Drive up to (but not through) the first tick of hour 1, then
        # process that boundary tick. Settling hour 0 fires on_settle
        # mid-tick — snapshot there, exactly as the service does, so
        # the state predates the boundary tick's own dispatch.
        first = _loop(world, engine, hours=3)
        snapshots = []
        first.on_settle = lambda loop, summary: snapshots.append(
            loop.state_dict()
        )
        boundary = next(i for i, t in enumerate(ticks) if t.time_s >= HOUR)
        head = [e.to_json() for t in ticks[:boundary] for e in first.on_tick(t)]
        first.on_tick(ticks[boundary])
        state = snapshots[0]
        assert state["settled_hours"] == 1

        resumed = ControlLoop(
            engine,
            "capping",
            trigger=TriggerPolicy(),
            budgeter=first.state.budgeter,
            hours=3,
        )
        resumed.load_state(state)
        # The boundary tick replays on resume and re-emits its events,
        # so head (pre-boundary) + replayed (boundary onward) is the
        # exact uninterrupted stream.
        replayed = [
            e.to_json() for t in ticks[boundary:] for e in resumed.on_tick(t)
        ]
        resumed.finish()
        assert head + replayed == reference

    def test_load_state_rejects_finished_run(self, world, engine):
        loop = _loop(world, engine, hours=1)
        run_serial(loop, replay_ticks(world.workload, ticks_per_hour=4, hours=1))
        loop.finish()
        state = loop.state_dict()
        fresh = _loop(world, engine, hours=1)
        with pytest.raises(ValueError):
            fresh.load_state(state)
