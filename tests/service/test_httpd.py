"""HTTP server edge cases: status discipline, keep-alive, streaming.

Each test runs a tiny route table on an ephemeral port inside one event
loop and speaks raw HTTP through ``asyncio.open_connection`` — the
protocol details (connection reuse, malformed lines, mid-stream
disconnects) are exactly what these tests pin, so no client library.
"""

import asyncio
import json

from repro.service import JsonHttpServer, StreamResponse


def _routes(extra=None):
    routes = {
        "/ping": lambda: (200, {"pong": True}),
        "/echo": lambda query: (200, {"query": query}),
    }
    routes.update(extra or {})
    return routes


async def _start(routes):
    server = JsonHttpServer(routes, "127.0.0.1", 0)
    await server.start()
    return server


async def _request(port, raw: bytes):
    """One raw request on a fresh connection; read until EOF."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    return data


def _status_of(response: bytes) -> int:
    return int(response.split(b" ", 2)[1])


def _body_of(response: bytes) -> dict:
    return json.loads(response.partition(b"\r\n\r\n")[2])


async def _read_response(reader) -> tuple[int, dict]:
    """One keep-alive response: parse Content-Length, read the body."""
    head = b""
    while not head.endswith(b"\r\n\r\n"):
        chunk = await reader.read(1)
        assert chunk, "connection closed mid-response"
        head += chunk
    length = next(
        int(line.split(b":")[1])
        for line in head.split(b"\r\n")
        if line.lower().startswith(b"content-length")
    )
    body = await reader.readexactly(length)
    return _status_of(head), json.loads(body)


class TestStatusDiscipline:
    def test_malformed_request_line_is_400(self):
        async def run():
            server = await _start(_routes())
            try:
                for raw in (
                    b"NOT-HTTP\r\n\r\n",
                    b"GET /ping\r\n\r\n",  # two parts
                    b"GET /ping NOTHTTP/1.1\r\n\r\n",
                    b"GET ping HTTP/1.1\r\n\r\n",  # target missing slash
                    b"\xff\xfe\xfd garbage \xff\r\n\r\n",
                ):
                    resp = await _request(server.port, raw)
                    assert _status_of(resp) == 400, raw
            finally:
                await server.stop()

        asyncio.run(run())

    def test_non_get_is_405_not_400(self):
        async def run():
            server = await _start(_routes())
            try:
                resp = await _request(
                    server.port,
                    b"POST /ping HTTP/1.1\r\nConnection: close\r\n\r\n",
                )
                assert _status_of(resp) == 405
            finally:
                await server.stop()

        asyncio.run(run())

    def test_unknown_route_lists_available_routes(self):
        async def run():
            server = await _start(_routes())
            try:
                resp = await _request(
                    server.port,
                    b"GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n",
                )
                assert _status_of(resp) == 404
                assert _body_of(resp)["routes"] == ["/echo", "/ping"]
            finally:
                await server.stop()

        asyncio.run(run())

    def test_oversized_request_line_is_400(self):
        async def run():
            server = await _start(_routes())
            try:
                resp = await _request(
                    server.port,
                    b"GET /" + b"x" * 32768 + b" HTTP/1.1\r\n\r\n",
                )
                assert _status_of(resp) == 400
            finally:
                await server.stop()

        asyncio.run(run())


class TestQueryAndPaths:
    def test_query_string_reaches_handler(self):
        async def run():
            server = await _start(_routes())
            try:
                resp = await _request(
                    server.port,
                    b"GET /echo?a=1&b=two&empty= HTTP/1.1\r\n"
                    b"Connection: close\r\n\r\n",
                )
                assert _body_of(resp)["query"] == {
                    "a": "1", "b": "two", "empty": "",
                }
            finally:
                await server.stop()

        asyncio.run(run())

    def test_trailing_slash_normalized(self):
        async def run():
            server = await _start(_routes())
            try:
                resp = await _request(
                    server.port,
                    b"GET /ping/ HTTP/1.1\r\nConnection: close\r\n\r\n",
                )
                assert _status_of(resp) == 200
                assert _body_of(resp) == {"pong": True}
            finally:
                await server.stop()

        asyncio.run(run())


class TestKeepAlive:
    def test_connection_reused_for_multiple_requests(self):
        async def run():
            server = await _start(_routes())
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                for _ in range(3):
                    writer.write(b"GET /ping HTTP/1.1\r\nHost: x\r\n\r\n")
                    await writer.drain()
                    status, body = await _read_response(reader)
                    assert (status, body) == (200, {"pong": True})
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_client_connection_close_is_honored(self):
        async def run():
            server = await _start(_routes())
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    b"GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n"
                )
                await writer.drain()
                raw = await reader.read()  # EOF: server closed
                assert _status_of(raw) == 200
                assert b"Connection: close" in raw
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_http10_closes_without_keepalive_header(self):
        async def run():
            server = await _start(_routes())
            try:
                raw = await _request(
                    server.port, b"GET /ping HTTP/1.0\r\n\r\n"
                )
                assert _status_of(raw) == 200
                assert b"Connection: close" in raw
            finally:
                await server.stop()

        asyncio.run(run())


class TestStreaming:
    def test_stream_response_delivers_chunks(self):
        async def chunks():
            for i in range(3):
                yield f"data: {i}\n\n".encode()

        async def run():
            server = await _start(
                _routes({"/stream": lambda: StreamResponse(chunks())})
            )
            try:
                raw = await _request(
                    server.port, b"GET /stream HTTP/1.1\r\n\r\n"
                )
                head, _, body = raw.partition(b"\r\n\r\n")
                assert b"text/event-stream" in head
                assert body == b"data: 0\n\ndata: 1\n\ndata: 2\n\n"
            finally:
                await server.stop()

        asyncio.run(run())

    def test_client_disconnect_mid_stream_closes_generator(self):
        cleaned = asyncio.Event()

        async def endless():
            try:
                while True:
                    yield b"data: tick\n\n"
                    await asyncio.sleep(0.01)
            finally:
                cleaned.set()

        async def run():
            server = await _start(
                _routes({"/stream": lambda: StreamResponse(endless())})
            )
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"GET /stream HTTP/1.1\r\n\r\n")
                await writer.drain()
                await reader.read(256)  # a few frames arrived
                writer.close()  # client goes away mid-stream
                await writer.wait_closed()
                # The server must aclose() the generator (its finally
                # block is where read-model unsubscription lives).
                await asyncio.wait_for(cleaned.wait(), timeout=5.0)
            finally:
                await server.stop()

        asyncio.run(run())
