"""Tests for the streaming tick sources."""

import numpy as np
import pytest

from repro.service import Tick, build_ticks, bursty_ticks, replay_ticks
from repro.workload import Trace

HOUR = 3600.0


def _trace(hours: int = 4) -> Trace:
    rates = 100.0 + 20.0 * np.sin(np.arange(hours))
    return Trace(rates, name="unit")


class TestTick:
    def test_price_tick_must_name_a_site(self):
        with pytest.raises(ValueError):
            Tick(seq=0, time_s=0.0, kind="price", value=1.1)
        Tick(seq=0, time_s=0.0, kind="price", value=1.1, site="east")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Tick(seq=0, time_s=0.0, kind="weather", value=1.0)

    def test_to_dict_round_trips_through_json(self):
        import json

        t = Tick(seq=3, time_s=120.5, kind="lambda", value=99.25)
        assert json.loads(json.dumps(t.to_dict())) == t.to_dict()


class TestReplayTicks:
    def test_same_seed_is_byte_identical(self):
        a = replay_ticks(_trace(), ticks_per_hour=6, jitter=0.05, seed=11)
        b = replay_ticks(_trace(), ticks_per_hour=6, jitter=0.05, seed=11)
        assert a == b

    def test_different_seed_differs(self):
        a = replay_ticks(_trace(), ticks_per_hour=6, jitter=0.05, seed=11)
        b = replay_ticks(_trace(), ticks_per_hour=6, jitter=0.05, seed=12)
        assert a != b

    def test_lambda_tick_exactly_at_each_hour_boundary(self):
        ticks = replay_ticks(_trace(4), ticks_per_hour=6, seed=0)
        boundary_times = {
            t.time_s for t in ticks if t.kind == "lambda" and t.time_s % HOUR == 0
        }
        assert boundary_times == {h * HOUR for h in range(4)}

    def test_seqs_contiguous_and_times_sorted(self):
        ticks = replay_ticks(
            _trace(3),
            ticks_per_hour=4,
            price_jitter=0.1,
            sites=("east", "west"),
            seed=5,
        )
        assert [t.seq for t in ticks] == list(range(len(ticks)))
        times = [t.time_s for t in ticks]
        assert times == sorted(times)

    def test_no_price_ticks_without_sites(self):
        ticks = replay_ticks(_trace(), ticks_per_hour=4, price_jitter=0.1, seed=0)
        assert all(t.kind == "lambda" for t in ticks)

    def test_price_ticks_name_sites_and_stay_clipped(self):
        ticks = replay_ticks(
            _trace(6),
            ticks_per_hour=4,
            price_jitter=0.5,
            sites=("east", "west"),
            seed=0,
        )
        prices = [t for t in ticks if t.kind == "price"]
        assert prices
        assert {t.site for t in prices} == {"east", "west"}
        assert all(0.5 <= t.value <= 2.0 for t in prices)

    def test_lambda_never_negative_under_heavy_jitter(self):
        ticks = replay_ticks(_trace(6), ticks_per_hour=12, jitter=5.0, seed=3)
        assert all(t.value >= 0.0 for t in ticks if t.kind == "lambda")

    def test_hours_clamps_the_stream(self):
        ticks = replay_ticks(_trace(6), ticks_per_hour=4, hours=2, seed=0)
        assert max(t.time_s for t in ticks) < 2 * HOUR


class TestBurstyTicks:
    def test_same_seed_is_byte_identical(self):
        a = bursty_ticks(_trace(), ticks_per_hour=6, ca2=4.0, seed=9)
        b = bursty_ticks(_trace(), ticks_per_hour=6, ca2=4.0, seed=9)
        assert a == b

    def test_burstier_than_replay(self):
        smooth = replay_ticks(_trace(6), ticks_per_hour=12, seed=2)
        bursty = bursty_ticks(_trace(6), ticks_per_hour=12, ca2=8.0, seed=2)
        cv = lambda ts: np.std(v := [t.value for t in ts]) / np.mean(v)
        assert cv(bursty) > cv(smooth)


class TestBuildTicks:
    def test_spec_round_trip_is_deterministic(self):
        spec = {
            "kind": "bursty",
            "ticks_per_hour": 8,
            "hours": 3,
            "seed": 42,
            "ca2": 4.0,
            "price_jitter": 0.1,
            "sites": ["east", "west"],
        }
        trace = _trace()
        assert build_ticks(trace, spec) == build_ticks(trace, dict(spec))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_ticks(_trace(), {"kind": "mystery"})
