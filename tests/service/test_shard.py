"""Sharded control plane: plan, determinism, budget ledger, resume.

The expensive multi-process checks share one quick spec (3 h, 6
ticks/h) so the whole module stays in tier-1 time. The determinism
contract under test: the in-process serial reference, and every
``workers=N`` multi-process run, produce byte-identical merged decision
logs — including after a mid-run stop plus resume with a *different*
worker count.
"""

import json
import threading

import pytest

from repro.experiments import paper_world, scaled_paper_world
from repro.service import (
    ControlLoop,
    ShardedControlPlane,
    TriggerPolicy,
    load_shard_checkpoint,
    merge_region_logs,
    plan_regions,
    run_sharded_serial,
)
from repro.sim.engine import Engine


def _spec(hours=3):
    return {
        "world": {"kind": "paper", "policy": 1, "seed": 7},
        "source": {
            "kind": "bursty", "ticks_per_hour": 6, "hours": hours,
            "seed": 1, "ca2": 4.0, "price_jitter": 0.03,
            "sites": ["DC1", "DC2", "DC3"],
        },
        "strategy": "capping",
        "trigger": {
            "lambda_delta": 0.05, "price_delta": 0.05,
            "debounce_s": 300.0, "max_staleness_s": 1500.0,
        },
        "degradation": None,
        "horizon": hours,
        "monthly_budget": 2_000_000.0,
    }


@pytest.fixture(scope="module")
def world():
    return paper_world(policy_id=1, seed=7)


@pytest.fixture(scope="module")
def engine(world):
    return Engine(world.sites, world.workload, world.mix)


@pytest.fixture(scope="module")
def reference():
    """Serial-reference merged log lines for the quick spec."""
    lines, coordinator = run_sharded_serial(_spec())
    return lines, coordinator


class TestRegionPlan:
    def test_paper_world_plans_one_region_per_market(self, engine):
        regions = plan_regions(engine)
        assert [r.sites for r in regions] == [("DC1",), ("DC2",), ("DC3",)]
        assert sum(r.share for r in regions) == pytest.approx(1.0)
        assert all(r.share > 0 for r in regions)

    def test_plan_is_deterministic(self, world):
        a = plan_regions(Engine(world.sites, world.workload, world.mix))
        b = plan_regions(Engine(world.sites, world.workload, world.mix))
        assert a == b

    def test_regions_never_span_pricing_policies(self):
        w = scaled_paper_world(6, seed=7)
        regions = plan_regions(Engine(w.sites, w.workload, w.mix))
        assert len(regions) == 6  # every site has its own policy object
        policy_of = {s.name: id(s.policy) for s in w.sites}
        for r in regions:
            assert len({policy_of[name] for name in r.sites}) == 1


class TestExplicitHourControl:
    """The ControlLoop half of the two-phase barrier protocol."""

    def test_open_settle_cycle(self, world, engine):
        loop = ControlLoop(
            engine, "capping",
            budget_source=lambda hour: 1e6,
            hours=2,
        )
        assert loop.settle_open_hour() is None  # idempotent when closed
        loop.open_hour(0)
        assert loop.hour_budget == 1e6
        summary = loop.settle_open_hour()
        assert summary["hour"] == 0
        loop.open_hour(1)
        with pytest.raises(ValueError, match="still open"):
            loop.open_hour(1)

    def test_open_hour_rejects_gaps_and_horizon(self, world, engine):
        loop = ControlLoop(
            engine, "capping", budget_source=lambda hour: 1e6, hours=2,
        )
        with pytest.raises(ValueError, match="expected hour 0"):
            loop.open_hour(1)
        loop.open_hour(0)
        loop.settle_open_hour()
        loop.open_hour(1)
        loop.settle_open_hour()
        with pytest.raises(ValueError, match="past the"):
            loop.open_hour(2)

    def test_budgeter_and_budget_source_are_exclusive(self, world, engine):
        with pytest.raises(ValueError, match="not both"):
            ControlLoop(
                engine, "capping",
                budgeter=world.budgeter(2e6),
                budget_source=lambda hour: 1.0,
                hours=2,
            )


class TestSerialReference:
    def test_reference_is_repeatable(self, reference):
        lines, _ = reference
        again, _ = run_sharded_serial(_spec())
        assert again == lines

    def test_ledger_settles_all_hours_and_conserves_budget(self, reference):
        lines, coordinator = reference
        assert coordinator.settled_hours == 3
        budgeter = coordinator.budgeter
        spends = sum(
            s["realized_cost"] for s in coordinator.hour_summaries
        )
        assert budgeter.total_spent == pytest.approx(spends)

    def test_allotments_split_by_share(self, engine):
        regions = plan_regions(engine)
        spec = _spec()
        lines, _ = run_sharded_serial(spec)
        by_hour_region = {}
        for line in lines:
            e = json.loads(line)
            site = e["allocations"][0][0]
            r = next(x.index for x in regions if site in x.sites)
            by_hour_region[(e["hour"], r)] = e["budget"]
        for hour in range(spec["horizon"]):
            budgets = [by_hour_region[(hour, r.index)] for r in regions]
            total = sum(budgets)
            for b, r in zip(budgets, regions):
                assert b == pytest.approx(total * r.share)


class TestMultiprocessDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_merged_log_matches_serial_reference(
        self, workers, reference, tmp_path
    ):
        ref, _ = reference
        log = tmp_path / "dec.jsonl"
        svc = ShardedControlPlane(
            _spec(), workers=workers, decision_log=log,
            checkpoint_path=tmp_path / "ck.json",
            http=False, handle_signals=False,
        )
        summary = svc.run()
        assert summary["worker_errors"] == {}
        assert log.read_text().splitlines() == ref
        assert summary["hours"] == 3
        assert summary["decisions"] == len(ref)

    def test_worker_counters_are_merged(self, reference, tmp_path):
        svc = ShardedControlPlane(
            _spec(), workers=2, decision_log=tmp_path / "dec.jsonl",
            http=False, handle_signals=False,
        )
        summary = svc.run()
        merged = svc.worker_counters
        assert merged["service.dispatches"] == summary["decisions"]
        assert merged["service.hours_settled"] == 3 * len(svc.regions)


class TestStopResume:
    def test_stop_then_resume_with_different_workers(
        self, reference, tmp_path
    ):
        ref, _ = reference
        log = tmp_path / "dec.jsonl"
        ckpt = tmp_path / "ck.json"
        svc = ShardedControlPlane(
            _spec(), workers=2, decision_log=log, checkpoint_path=ckpt,
            http=False, handle_signals=False, pace_s_per_hour=1.5,
        )
        # Stop mid-run: late enough for at least one settled hour,
        # early enough to leave work for the resumed service.
        threading.Timer(2.0, svc.request_stop).start()
        first = svc.run()
        assert first["stopped"]
        payload = load_shard_checkpoint(ckpt)
        assert 0 < payload["settled_hours"] < 3

        resumed = ShardedControlPlane.resume(
            ckpt, workers=3, http=False, handle_signals=False,
        )
        summary = resumed.run()
        assert summary["worker_errors"] == {}
        assert summary["hours"] == 3
        assert log.read_text().splitlines() == ref

    def test_finished_checkpoint_refuses_resume(self, tmp_path):
        svc = ShardedControlPlane(
            _spec(), workers=2, decision_log=tmp_path / "dec.jsonl",
            checkpoint_path=tmp_path / "ck.json",
            http=False, handle_signals=False,
        )
        svc.run()
        with pytest.raises(ValueError, match="nothing left"):
            ShardedControlPlane.resume(tmp_path / "ck.json")


class TestMergeRegionLogs:
    def test_merge_orders_by_tick_then_region(self, tmp_path):
        a = tmp_path / "r0.jsonl"
        b = tmp_path / "r1.jsonl"
        a.write_text(
            '{"tick_seq": 1, "who": "a1"}\n{"tick_seq": 5, "who": "a5"}\n'
        )
        b.write_text(
            '{"tick_seq": 1, "who": "b1"}\n{"tick_seq": 3, "who": "b3"}\n'
        )
        out = tmp_path / "merged.jsonl"
        n = merge_region_logs({0: a, 1: b}, out)
        assert n == 4
        order = [json.loads(l)["who"] for l in out.read_text().splitlines()]
        assert order == ["a1", "b1", "b3", "a5"]
