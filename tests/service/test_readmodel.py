"""Read-model tests: bounded feeds, non-blocking publish, long-poll."""

import asyncio
import json
import time

from repro.service import DecisionReadModel, sse_frame, sse_stream


def _ev(n):
    return {"seq": n, "hour": 0}


class TestPublishAndRead:
    def test_pub_seq_monotone_and_latest(self):
        rm = DecisionReadModel()
        assert rm.latest() is None
        seqs = [rm.publish(_ev(i), region=i % 2) for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert rm.latest()["event"] == _ev(4)
        assert rm.latest(region=0)["event"] == _ev(4)
        assert rm.latest(region=1)["event"] == _ev(3)

    def test_since_replays_ring_in_order(self):
        rm = DecisionReadModel(history=8)
        for i in range(12):
            rm.publish(_ev(i))
        got = rm.since(6)
        assert [r["pub_seq"] for r in got] == [7, 8, 9, 10, 11, 12]
        # Ring is bounded: the oldest records are gone.
        assert [r["pub_seq"] for r in rm.since(0)] == list(range(5, 13))

    def test_snapshot_carries_per_region_latest(self):
        rm = DecisionReadModel()
        rm.publish(_ev(0), region=0)
        rm.publish(_ev(1), region=1)
        snap = rm.snapshot()
        assert snap["pub_seq"] == 2
        assert snap["regions"]["0"]["event"] == _ev(0)
        assert snap["regions"]["1"]["event"] == _ev(1)


class TestBoundedSubscribers:
    def test_slow_subscriber_drops_oldest(self):
        rm = DecisionReadModel()
        sub = rm.subscribe(maxlen=4)
        for i in range(10):
            rm.publish(_ev(i))
        assert sub.dropped == 6
        assert rm.dropped_total == 6
        # The queue kept the newest records.
        kept = [r["event"]["seq"] for r in sub.drain()]
        assert kept == [6, 7, 8, 9]

    def test_publish_never_blocks_on_stalled_subscriber(self):
        rm = DecisionReadModel()
        rm.subscribe(maxlen=2)  # never drained
        t0 = time.perf_counter()
        for i in range(5000):
            rm.publish(_ev(i))
        elapsed = time.perf_counter() - t0
        # 5000 publishes against a full queue stay well under a second
        # (drop-oldest is O(1)); a blocking design would hang forever.
        assert elapsed < 1.0
        assert rm.pub_seq == 5000

    def test_unsubscribe_stops_delivery(self):
        rm = DecisionReadModel()
        sub = rm.subscribe()
        rm.publish(_ev(0))
        rm.unsubscribe(sub)
        rm.publish(_ev(1))
        assert len(sub.queue) == 1
        assert rm.subscribers == 0

    def test_push_latency_sampled(self):
        rm = DecisionReadModel()
        rm.publish(_ev(0), produced_mono=time.monotonic())
        assert len(rm.push_latency_s) == 1
        assert 0.0 <= rm.push_latency_s[0] < 1.0


class TestWaitNewer:
    def test_immediate_backlog(self):
        async def run():
            rm = DecisionReadModel()
            rm.bind_loop()
            rm.publish(_ev(0))
            rm.publish(_ev(1))
            record = await rm.wait_newer(1, timeout_s=1.0)
            assert record["pub_seq"] == 2

        asyncio.run(run())

    def test_wakes_on_publish_from_thread(self):
        async def run():
            rm = DecisionReadModel()
            rm.bind_loop()
            aio = asyncio.get_running_loop()

            async def poke():
                await asyncio.sleep(0.05)
                await aio.run_in_executor(None, rm.publish, _ev(0))

            task = asyncio.ensure_future(poke())
            record = await rm.wait_newer(0, timeout_s=5.0)
            await task
            assert record["pub_seq"] == 1

        asyncio.run(run())

    def test_timeout_returns_none(self):
        async def run():
            rm = DecisionReadModel()
            rm.bind_loop()
            assert await rm.wait_newer(0, timeout_s=0.05) is None

        asyncio.run(run())


class TestSse:
    def test_frame_format(self):
        record = {"pub_seq": 7, "region": 1, "event": _ev(3)}
        frame = sse_frame(record)
        assert frame.startswith(b"id: 7\ndata: ")
        assert frame.endswith(b"\n\n")
        assert json.loads(frame[frame.index(b"{"):].strip()) == record

    def test_stream_replays_then_follows(self):
        async def run():
            rm = DecisionReadModel()
            rm.bind_loop()
            rm.publish(_ev(0))
            rm.publish(_ev(1))
            stream = sse_stream(rm, since=1)
            frames = [await anext(stream)]  # replay: pub_seq 2

            async def publish_soon():
                await asyncio.sleep(0.02)
                rm.publish(_ev(2))

            task = asyncio.ensure_future(publish_soon())
            frames.append(await anext(stream))  # live: pub_seq 3
            await task
            await stream.aclose()
            ids = [int(f.split(b"\n")[0].split(b": ")[1]) for f in frames]
            assert ids == [2, 3]
            assert rm.subscribers == 0  # aclose unsubscribed

        asyncio.run(run())
