"""Ablation: cooling + networking power in the decision model.

The paper's first claimed improvement over prior work is modeling
cooling and networking power, "up to 50% of the power consumption of a
data center", inside the optimization. This ablation dispatches with
two decision models — the full affine model (servers + switches +
cooling) and a servers-only model (the prior-work assumption) — and
bills both against the same exact physics.

The servers-only dispatcher underestimates each site's draw, so it
believes markets stay below price breakpoints that the real draw
crosses; the full model avoids those crossings.
"""

import pytest

from repro.core import CostMinimizer, SiteHour, server_only_affine_slope
from repro.datacenter import AffinePower

from conftest import BENCH_HOURS

from _report import report, table

_HOURS = max(48, BENCH_HOURS // 3)


def _servers_only_hour(site, t) -> SiteHour:
    """A site snapshot whose decision model ignores cooling/networking."""
    full = site.hour(t)
    slope = server_only_affine_slope(site.datacenter)
    return SiteHour(
        name=full.name,
        affine=AffinePower(slope, 0.0),
        policy=full.policy,
        background_mw=full.background_mw,
        power_cap_mw=full.power_cap_mw,
        max_rate_rps=full.max_rate_rps,
    )


def _run(world, decision_hours_fn) -> float:
    solver = CostMinimizer()
    total = 0.0
    for t in range(_HOURS):
        lam = float(world.workload.rates_rps[t])
        decision = solver.solve(decision_hours_fn(t), lam)
        for site, alloc in zip(world.sites, decision.allocations):
            _, _, cost = site.evaluate_hour(t, alloc.rate_rps)
            total += cost
    return total


def test_ablation_power_model(benchmark, world):
    full_cost = benchmark.pedantic(
        lambda: _run(world, lambda t: [s.hour(t) for s in world.sites]),
        rounds=1,
        iterations=1,
    )
    servers_only_cost = _run(
        world, lambda t: [_servers_only_hour(s, t) for s in world.sites]
    )

    penalty = servers_only_cost / full_cost - 1
    report(
        "ablation_power_model",
        "decision model: full power vs servers-only",
        table(
            ("decision model", "realized bill $"),
            [
                ("servers + network + cooling", f"{full_cost:,.0f}"),
                ("servers only (prior work)", f"{servers_only_cost:,.0f}"),
            ],
        )
        + ["", f"servers-only pays {penalty:.1%} more"],
    )

    # Ignoring ~50% of the power in the decision model must cost money.
    assert servers_only_cost > full_cost * 1.01
