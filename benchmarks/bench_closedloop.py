"""Benchmark harness for the closed-loop endogenous-pricing path.

Writes ``BENCH_closedloop.json`` at the repo root (companion of
``BENCH_service.json`` etc.). Tracked numbers:

* **fixed-point iterations per hour** — OPF re-clears the damped
  dispatch <-> DC-OPF iteration needs before the LMP vector settles
  (2 is the floor: convergence is detected by comparing successive
  clears);
* **wall time per hour** — full closed-loop hour (strategy dispatch +
  sweep-regenerated policies + OPF clears) on the paper world;
* **convergence rate** — fraction of hours reaching the fixed point
  within the iteration budget, on the intact grid and under an N-1
  contingency with renewable-shaped background demand;
* **mitigation** — the undamped best-response dynamic must oscillate
  on the two-zone congestion step while damping converges the same
  scenario; this is the closed-loop module's reason to exist.

Run as a script: ``PYTHONPATH=src python benchmarks/bench_closedloop.py
[--quick]``. CI runs quick mode and validates the JSON shape.
"""

import json
import os
import pathlib
import time

#: Where the machine-readable baseline lands (repo root).
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_closedloop.json"

#: Acceptance floors. The paper world's load range must settle every
#: hour; contingency scenarios may legitimately fall back on a few
#: hours, so their floor is lower.
CRITERIA = {
    "convergence_rate_min": 1.0,
    "contingency_convergence_rate_min": 0.9,
    "damping_mitigates_oscillation": True,
}


def _closed_loop_case(hours: int, scenario: dict) -> dict:
    """One telemetry-instrumented closed-loop month via the sweep metric."""
    from repro.sim import closedloop_metric
    from repro.telemetry import Telemetry, use_telemetry

    t0 = time.perf_counter()
    with use_telemetry(Telemetry()):
        summary = closedloop_metric({"hours": hours, **scenario})
    wall_s = time.perf_counter() - t0
    return {
        "hours": summary["hours"],
        "scenario": scenario,
        "total_cost": summary["total_cost"],
        "iterations": summary["iterations"],
        "iterations_per_hour": summary["mean_iterations"],
        "wall_s": wall_s,
        "wall_s_per_hour": wall_s / max(1, summary["hours"]),
        "convergence_rate": summary["convergence_rate"],
        "oscillated_hours": summary["oscillated_hours"],
        "fallback_hours": summary["fallback_hours"],
    }


def _paper_case(quick: bool) -> dict:
    case = _closed_loop_case(6 if quick else 72, {})
    case["meets_criterion"] = (
        case["convergence_rate"] >= CRITERIA["convergence_rate_min"]
    )
    return case


def _contingency_case(quick: bool) -> dict:
    case = _closed_loop_case(
        6 if quick else 48,
        {"line_outage": "D-E", "background": "renewable", "operators": 3},
    )
    case["meets_criterion"] = (
        case["convergence_rate"]
        >= CRITERIA["contingency_convergence_rate_min"]
    )
    return case


def _mitigation_case() -> dict:
    """Undamped best response oscillates; damping converges it."""
    from repro.powermarket.closedloop import (
        ClosedLoopConfig,
        EndogenousPricer,
        MarketCoupling,
        get_grid,
    )
    from repro.telemetry import Telemetry, use_telemetry

    coupling = MarketCoupling(
        grid=get_grid("two-zone"), site_buses={"DC": "Y"}
    )

    def spot_taker(policies, injections, rivals):
        price = policies["Y"].price(60.0 + injections["DC"])
        return {"DC": 10.0 if price > 20.0 else 120.0}

    def run(damping: float):
        with use_telemetry(Telemetry()):
            pricer = EndogenousPricer(
                coupling, ClosedLoopConfig(damping=damping, max_iterations=8)
            )
            t0 = time.perf_counter()
            result = pricer.solve_hour(
                {"DC": 60.0}, {"DC": 120.0}, spot_taker
            )
            return result, time.perf_counter() - t0

    undamped, undamped_s = run(1.0)
    damped, damped_s = run(0.5)
    mitigated = (
        undamped.oscillated
        and not undamped.converged
        and damped.converged
        and not damped.oscillated
    )
    return {
        "undamped": {
            "converged": undamped.converged,
            "oscillated": undamped.oscillated,
            "iterations": undamped.iterations,
            "wall_s": undamped_s,
        },
        "damped": {
            "converged": damped.converged,
            "oscillated": damped.oscillated,
            "iterations": damped.iterations,
            "wall_s": damped_s,
        },
        "damping_mitigates_oscillation": mitigated,
        "meets_criterion": mitigated
        == CRITERIA["damping_mitigates_oscillation"],
    }


def run_closedloop_suite(quick: bool = False) -> dict:
    """Run all cases and return the BENCH_closedloop.json payload."""
    import platform

    import numpy

    cases = {
        "paper_world": _paper_case(quick),
        "contingency": _contingency_case(quick),
        "mitigation": _mitigation_case(),
    }
    return {
        "benchmark": "closedloop",
        "schema_version": 1,
        "quick": quick,
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
        },
        "cases": cases,
        "criteria": {
            **CRITERIA,
            "met": all(c["meets_criterion"] for c in cases.values()),
        },
    }


def _main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Closed-loop endogenous-pricing harness; writes "
        "BENCH_closedloop.json at the repo root."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the runs for CI smoke (same JSON shape)",
    )
    parser.add_argument(
        "--out", default=str(BENCH_JSON), help="output path for the JSON"
    )
    args = parser.parse_args(argv)

    payload = run_closedloop_suite(quick=args.quick)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out}")
    for name in ("paper_world", "contingency"):
        c = payload["cases"][name]
        print(
            f"  {name} ({c['hours']}h): "
            f"{c['iterations_per_hour']:.2f} iters/h, "
            f"{c['wall_s_per_hour'] * 1e3:.1f} ms/h, "
            f"convergence {c['convergence_rate']:.0%}, "
            f"fallback {c['fallback_hours']:.0f}h"
        )
    m = payload["cases"]["mitigation"]
    print(
        f"  mitigation: undamped oscillated={m['undamped']['oscillated']} "
        f"(iters {m['undamped']['iterations']}); damped "
        f"converged={m['damped']['converged']} "
        f"(iters {m['damped']['iterations']})"
    )
    print(f"  criteria met: {payload['criteria']['met']}")
    return 0 if payload["criteria"]["met"] else 1


if __name__ == "__main__":
    raise SystemExit(_main())
