"""Shared reporting helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's figures as a text table.
Tables are printed (visible with ``pytest -s``) *and* persisted under
``benchmarks/results/`` so a default ``pytest benchmarks/
--benchmark-only`` run leaves the regenerated series on disk.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(figure: str, title: str, lines: Iterable[str]) -> None:
    """Print a figure's regenerated series and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    body = "\n".join([f"== {figure}: {title} ==", *lines, ""])
    print("\n" + body)
    (RESULTS_DIR / f"{figure}.txt").write_text(body)


def table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> list[str]:
    """Format rows as a fixed-width text table."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    return [fmt.format(*header), *(fmt.format(*row) for row in rows)]
