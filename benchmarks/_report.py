"""Shared reporting helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's figures as a text table.
Tables are printed (visible with ``pytest -s``) *and* persisted under
``benchmarks/results/`` — both as the original fixed-width text and as
a JSON sidecar (``<figure>.json``) so BENCH trajectory tooling can
parse runs without scraping text. :func:`table` returns a
:class:`Table` that remembers its header and raw rows; :func:`report`
embeds that structure in the JSON whenever it receives one.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class Table(list):
    """Formatted table lines that remember their structured content."""

    def __init__(self, lines: Iterable[str], header: Sequence[str],
                 rows: Sequence[Sequence[object]]):
        super().__init__(lines)
        self.header = list(map(str, header))
        self.rows = [list(r) for r in rows]


def report(figure: str, title: str, lines: Iterable[str]) -> None:
    """Print a figure's regenerated series and persist it (txt + json)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    if not isinstance(lines, list):
        lines = list(lines)
    body = "\n".join([f"== {figure}: {title} ==", *lines, ""])
    print("\n" + body)
    (RESULTS_DIR / f"{figure}.txt").write_text(body)
    payload: dict = {"figure": figure, "title": title, "lines": list(lines)}
    if isinstance(lines, Table):
        payload["header"] = lines.header
        payload["rows"] = lines.rows
    (RESULTS_DIR / f"{figure}.json").write_text(
        json.dumps(payload, indent=2, default=str) + "\n"
    )


def table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> Table:
    """Format rows as a fixed-width text table (with structure attached)."""
    raw = [list(r) for r in rows]
    cells = [list(map(str, r)) for r in raw]
    widths = [len(h) for h in header]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    return Table(
        [fmt.format(*header), *(fmt.format(*row) for row in cells)],
        header,
        raw,
    )
