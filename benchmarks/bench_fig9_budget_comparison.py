"""Figure 9: cost & throughput vs baselines under a stringent budget.

The paper's Figure 9 normalizes monthly bills against a $1.5M budget
and throughput against Min-Only. Claims reproduced:

* Min-Only serves 100% of both classes but busts the budget
  (paper: +23.3% Avg, +39.5% Low);
* Cost Capping keeps the bill at or below the budget with high
  utilization (paper: 98.5%), guarantees 100% premium throughput, and
  serves a substantial best-effort fraction of ordinary requests.
"""

import pytest

from repro.experiments import PAPER_BUDGET_LEVELS

from conftest import BENCH_HOURS, monthly_budget_from, run_once

from _report import report, table


def test_fig9_budget_comparison(
    benchmark, world, simulator, uncapped, min_only_avg, min_only_low
):
    monthly = monthly_budget_from(uncapped, world, PAPER_BUDGET_LEVELS["1.5M"])
    capped = run_once(
        benchmark,
        lambda: simulator.run_capping(world.budgeter(monthly), hours=BENCH_HOURS),
    )

    budget_slice = monthly * BENCH_HOURS / world.hours
    rows = []
    for name, res in (
        ("CostCapping", capped),
        ("MinOnly(Avg)", min_only_avg),
        ("MinOnly(Low)", min_only_low),
    ):
        rows.append(
            (
                name,
                f"{res.total_cost / budget_slice:.3f}",
                f"{res.premium_throughput_fraction:.3f}",
                f"{res.ordinary_throughput_fraction:.3f}",
            )
        )
    report(
        "fig9",
        f"normalized cost & throughput at the $1.5M-analogue budget",
        table(("strategy", "cost/budget", "premium", "ordinary"), rows)
        + [
            "",
            "paper: MinOnly(Avg) 1.233, MinOnly(Low) 1.395, "
            "CostCapping 0.985 with 100% premium / 80.3% peak ordinary",
        ],
    )

    cc_util = capped.total_cost / budget_slice
    # Min-Only busts the budget; Cost Capping respects it (within the
    # mandatory-premium violations, which stay small in aggregate).
    assert min_only_avg.total_cost / budget_slice > 1.05
    assert min_only_low.total_cost / budget_slice > 1.05
    assert cc_util <= 1.02
    # ... while using most of it (the paper reports 98.5%).
    assert cc_util > 0.80
    # Service guarantees.
    assert capped.premium_throughput_fraction > 1 - 1e-6
    assert min_only_avg.premium_throughput_fraction > 1 - 1e-6
    assert 0.0 < capped.ordinary_throughput_fraction < 1.0
