"""Figures 5 & 6: capping under an abundant budget ($2.5M analogue).

Figure 5: with an abundant monthly budget every premium *and* ordinary
request is served. Figure 6: the hourly cost stays below the hourly
budget, and the allocated hourly budget grows over each week because
unused budget is carried over.
"""

import numpy as np

from repro.experiments import PAPER_BUDGET_LEVELS
from repro.workload import HOURS_PER_WEEK

from conftest import BENCH_HOURS, monthly_budget_from, run_once

from _report import report, table


def test_fig5_6_abundant_budget(benchmark, world, simulator, uncapped):
    monthly = monthly_budget_from(uncapped, world, PAPER_BUDGET_LEVELS["2.5M"])
    capped = run_once(
        benchmark,
        lambda: simulator.run_capping(world.budgeter(monthly), hours=BENCH_HOURS),
    )

    step = max(1, BENCH_HOURS // 48)
    rows = [
        (
            t,
            f"{capped.hours[t].demand_premium_rps / 1e6:,.0f}",
            f"{capped.hours[t].served_premium_rps / 1e6:,.0f}",
            f"{capped.hours[t].demand_ordinary_rps / 1e6:,.0f}",
            f"{capped.hours[t].served_ordinary_rps / 1e6:,.0f}",
            f"{capped.hourly_budgets[t]:,.0f}",
            f"{capped.hourly_costs[t]:,.0f}",
        )
        for t in range(0, BENCH_HOURS, step)
    ]
    report(
        "fig5_6",
        f"abundant budget (${monthly:,.0f}/month analogue of $2.5M)",
        table(
            ("hour", "prem in", "prem out", "ord in", "ord out", "budget $", "cost $"),
            rows,
        )
        + [
            "",
            f"premium throughput: {capped.premium_throughput_fraction:.3%}",
            f"ordinary throughput: {capped.ordinary_throughput_fraction:.3%}",
            f"hours over budget: {capped.hours_over_budget}",
        ],
    )

    # -- Figure 5 shape: everything served ------------------------------------
    assert capped.premium_throughput_fraction > 1 - 1e-6
    assert capped.ordinary_throughput_fraction > 1 - 1e-6

    # -- Figure 6 shape: cost below budget everywhere -------------------------
    assert capped.hours_over_budget == 0
    assert np.all(capped.hourly_costs <= capped.hourly_budgets + 1e-6)

    # Carryover makes the weekly budget staircase grow: within each full
    # calendar week the mean budget of the last two days exceeds the
    # mean of the first two.
    offset = (HOURS_PER_WEEK - world.workload.start_weekday * 24) % HOURS_PER_WEEK
    budgets = capped.hourly_budgets
    checked = 0
    start = offset
    while start + HOURS_PER_WEEK <= BENCH_HOURS:
        week = budgets[start : start + HOURS_PER_WEEK]
        assert week[-48:].mean() > week[:48].mean()
        checked += 1
        start += HOURS_PER_WEEK
    assert checked >= 1
