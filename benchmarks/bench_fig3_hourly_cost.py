"""Figure 3: hourly electricity cost, Cost Capping vs Min-Only.

The paper's Figure 3 plots hourly bills over the November trace for
Cost Capping, Min-Only (Avg) and Min-Only (Low); Cost Capping saves
17.9% / 33.5% versus the two baselines. This benchmark regenerates the
three hourly series over the bench horizon and asserts the shape: Cost
Capping's bill is lower in aggregate and never materially higher in any
hour, with double-digit total savings.

Reproduction note (EXPERIMENTS.md): with the Section VI-A server
parameters, Min-Only (Avg) and Min-Only (Low) believe the *same*
cheapest-site ordering, so their dispatches — and realized bills —
coincide in our world; the paper's two baselines differ from each
other for reasons its text does not pin down. The Cost-Capping-vs-
baseline gap is the claim under test.
"""

import numpy as np

from conftest import BENCH_HOURS, run_once

from _report import report, table


def test_fig3_hourly_cost_comparison(benchmark, simulator, uncapped, min_only_avg, min_only_low):
    # The heavy runs are session fixtures; benchmark the capping month once
    # more so pytest-benchmark reports its cost.
    capping = run_once(
        benchmark, lambda: simulator.run_capping(hours=min(48, BENCH_HOURS))
    )
    assert capping.total_cost > 0

    cc = uncapped.hourly_costs
    avg = min_only_avg.hourly_costs
    low = min_only_low.hourly_costs

    step = max(1, BENCH_HOURS // 48)
    rows = [
        (t, f"{cc[t]:,.0f}", f"{avg[t]:,.0f}", f"{low[t]:,.0f}")
        for t in range(0, BENCH_HOURS, step)
    ]
    savings_avg = 1 - cc.sum() / avg.sum()
    savings_low = 1 - cc.sum() / low.sum()
    report(
        "fig3",
        "hourly cost ($): Cost Capping vs Min-Only",
        table(("hour", "CostCapping", "MinOnly(Avg)", "MinOnly(Low)"), rows)
        + [
            "",
            f"total: cc=${cc.sum():,.0f} avg=${avg.sum():,.0f} low=${low.sum():,.0f}",
            f"savings vs Min-Only (Avg): {savings_avg:.1%}   (paper: 17.9%)",
            f"savings vs Min-Only (Low): {savings_low:.1%}   (paper: 33.5%)",
        ],
    )

    # -- shape assertions ------------------------------------------------------
    # Cost Capping wins in aggregate by a double-digit margin.
    assert savings_avg > 0.10
    assert savings_low > 0.10
    # Hour-by-hour, capping is never materially worse than the baselines.
    assert np.all(cc <= avg * 1.02 + 1.0)
    # Both serve the full workload - the saving is not from shedding.
    assert uncapped.premium_throughput_fraction > 1 - 1e-9
    assert min_only_avg.premium_throughput_fraction > 1 - 1e-9
