"""Session-wide fixtures for the figure benchmarks.

The expensive artifacts — the assembled paper world and the uncapped
month simulation every budget level is anchored against — are built
once per pytest session and shared by all benchmark files.

``BENCH_HOURS`` trades fidelity for wall-clock: the default 360 hours
(15 days) preserves every qualitative feature (two full weeks plus
change for the budgeter's weekly structure); set the environment
variable ``REPRO_BENCH_HOURS=720`` for the full month.
"""

from __future__ import annotations

import os

import pytest

from repro.core import PriceMode
from repro.experiments import paper_world
from repro.sim import Simulator

#: Simulated horizon per strategy run (hours).
BENCH_HOURS = int(os.environ.get("REPRO_BENCH_HOURS", "360"))


@pytest.fixture(scope="session", autouse=True)
def bench_telemetry():
    """Machine-readable telemetry sidecar for benchmark runs.

    Set ``REPRO_BENCH_TELEMETRY=1`` to record spans and solver metrics
    across the whole benchmark session and write them to
    ``benchmarks/results/telemetry.jsonl`` (inspect with
    ``repro telemetry summary``). Off by default so timing benchmarks
    measure the uninstrumented no-op path.
    """
    if not os.environ.get("REPRO_BENCH_TELEMETRY"):
        yield None
        return
    from repro.telemetry import Telemetry, use_telemetry, write_jsonl

    from _report import RESULTS_DIR

    tel = Telemetry()
    with use_telemetry(tel):
        yield tel
    path = write_jsonl(tel, RESULTS_DIR / "telemetry.jsonl")
    print(f"\ntelemetry sidecar written to {path}")


@pytest.fixture(scope="session")
def world():
    """The canonical Section VI world (Policy 1)."""
    return paper_world()


@pytest.fixture(scope="session")
def simulator(world):
    return Simulator(world.sites, world.workload, world.mix)


@pytest.fixture(scope="session")
def uncapped(simulator):
    """Uncapped Cost Capping over the bench horizon (budget anchor)."""
    return simulator.run_capping(hours=BENCH_HOURS)


@pytest.fixture(scope="session")
def min_only_avg(simulator):
    return simulator.run_min_only(PriceMode.AVG, hours=BENCH_HOURS)


@pytest.fixture(scope="session")
def min_only_low(simulator):
    return simulator.run_min_only(PriceMode.LOW, hours=BENCH_HOURS)


def monthly_budget_from(uncapped_result, world, fraction: float) -> float:
    """Anchor a monthly budget at ``fraction`` of the uncapped spend."""
    scale = world.hours / len(uncapped_result)
    return uncapped_result.total_cost * scale * fraction


def run_once(benchmark, fn):
    """Run a month-scale simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
