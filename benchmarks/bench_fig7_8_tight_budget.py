"""Figures 7 & 8: capping under an insufficient budget ($1.5M analogue).

Figure 7: premium requests keep full service regardless; ordinary
requests are admitted best-effort, with some hours serving none at all.
Figure 8: the hourly cost is controlled below the hourly budget except
in mandatory-premium hours, where the budget is knowingly violated.
"""

import numpy as np

from repro.core import CappingStep
from repro.experiments import PAPER_BUDGET_LEVELS

from conftest import BENCH_HOURS, monthly_budget_from, run_once

from _report import report, table


def test_fig7_8_tight_budget(benchmark, world, simulator, uncapped):
    monthly = monthly_budget_from(uncapped, world, PAPER_BUDGET_LEVELS["1.5M"])
    capped = run_once(
        benchmark,
        lambda: simulator.run_capping(world.budgeter(monthly), hours=BENCH_HOURS),
    )

    step = max(1, BENCH_HOURS // 48)
    marker = {
        CappingStep.COST_MIN: ".",
        CappingStep.THROUGHPUT_MAX: "t",
        CappingStep.PREMIUM_ONLY: "P",
    }
    rows = [
        (
            t,
            marker[capped.hours[t].step],
            f"{capped.hours[t].served_premium_rps / 1e6:,.0f}",
            f"{capped.hours[t].demand_ordinary_rps / 1e6:,.0f}",
            f"{capped.hours[t].served_ordinary_rps / 1e6:,.0f}",
            f"{capped.hourly_budgets[t]:,.0f}",
            f"{capped.hourly_costs[t]:,.0f}",
        )
        for t in range(0, BENCH_HOURS, step)
    ]
    zero_ordinary = int(np.sum(capped.served_ordinary < 1e-6))
    report(
        "fig7_8",
        f"tight budget (${monthly:,.0f}/month analogue of $1.5M)",
        table(("hour", "step", "prem out", "ord in", "ord out", "budget $", "cost $"), rows)
        + [
            "",
            f"premium throughput: {capped.premium_throughput_fraction:.3%}",
            f"ordinary throughput: {capped.ordinary_throughput_fraction:.1%}",
            f"hours with zero ordinary service: {zero_ordinary}/{BENCH_HOURS}",
            f"hours over budget (mandatory premium): {capped.hours_over_budget}",
        ],
    )

    # -- Figure 7 shape -----------------------------------------------------
    # Premium always fully served.
    assert capped.premium_throughput_fraction > 1 - 1e-6
    # Ordinary customers throttled overall, but not eliminated.
    assert 0.0 < capped.ordinary_throughput_fraction < 1.0
    # Some hours serve no ordinary requests at all (paper's hours 176-178).
    assert zero_ordinary > 0
    # ... and some hours serve all of them (off-peak).
    full_hours = np.sum(
        capped.served_ordinary >= capped.demand_ordinary - 1e-6
    )
    assert full_hours > 0

    # -- Figure 8 shape -----------------------------------------------------
    # Every *materially* over-budget hour is a mandatory-premium hour;
    # steps 1-2 leave a safety headroom, so any residual overshoot from
    # the smooth-vs-stepped model gap stays within ~2%.
    material = np.flatnonzero(capped.hourly_costs > capped.hourly_budgets * 1.02 + 1e-6)
    steps = [capped.hours[int(t)].step for t in material]
    assert all(s is CappingStep.PREMIUM_ONLY for s in steps)
    within = [h for h in capped.hours if h.step is not CappingStep.PREMIUM_ONLY]
    assert all(h.realized_cost <= h.budget * 1.02 + 1e-6 for h in within)
    # The safety headroom works for the overwhelming majority of
    # step-1/2 hours even at the strict threshold.
    strict_over = [
        h
        for h in within
        if h.realized_cost > h.budget * (1 + 1e-9)
    ]
    assert len(strict_over) <= max(2, len(within) // 20)
