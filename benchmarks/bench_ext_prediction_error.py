"""Extension: budgeting robustness under workload-prediction error.

Section IX asks how the scheme behaves "when the workload prediction is
inaccurate from time to time". Here the budgeter's history is
deliberately corrupted (a different month with extra noise and a level
bias), and the plain weekly-carryover budgeter is compared against the
self-correcting :class:`~repro.core.AdaptiveBudgeter` at the tight
budget level. Shape asserted: both keep the premium guarantee; the
adaptive budgeter's monthly spend tracks the budget at least as closely
as the plain one's under a corrupted forecast.
"""

import pytest

from repro.core import AdaptiveBudgeter, Budgeter
from repro.experiments import PAPER_BUDGET_LEVELS
from repro.workload import HourOfWeekPredictor, wikipedia_like_trace

from conftest import BENCH_HOURS, monthly_budget_from, run_once

from _report import report, table

_HOURS = max(48, BENCH_HOURS // 2)


def _corrupted_predictor(world):
    """History from a different, noisier, downward-biased month."""
    bad_history = wikipedia_like_trace(
        world.history.hours,
        0.6 * float(world.history.rates_rps.max()),  # 40% level bias
        seed=999,
        noise=0.25,
        start_weekday=world.history.start_weekday,
    )
    return HourOfWeekPredictor(bad_history)


def test_ext_prediction_error(benchmark, world, simulator, uncapped):
    monthly = monthly_budget_from(uncapped, world, PAPER_BUDGET_LEVELS["1.5M"])
    predictor = _corrupted_predictor(world)
    # Treat the bench horizon as a complete budgeting period so both
    # budgeters (including the adaptive one's end-of-period reserve
    # release) play out fully.
    budget_slice = monthly * _HOURS / world.hours

    plain = run_once(
        benchmark,
        lambda: simulator.run_capping(
            Budgeter(
                budget_slice,
                predictor,
                month_hours=_HOURS,
                start_weekday=world.workload.start_weekday,
            ),
            hours=_HOURS,
            name="plain-corrupted",
        ),
    )
    adaptive = simulator.run_capping(
        AdaptiveBudgeter(
            budget_slice,
            predictor,
            month_hours=_HOURS,
            start_weekday=world.workload.start_weekday,
        ),
        hours=_HOURS,
        name="adaptive-corrupted",
    )
    rows = [
        (
            name,
            f"{res.total_cost:,.0f}",
            f"{res.total_cost / budget_slice:.3f}",
            f"{res.ordinary_throughput_fraction:.3f}",
            res.hours_over_budget,
        )
        for name, res in (("plain budgeter", plain), ("adaptive budgeter", adaptive))
    ]
    report(
        "ext_prediction_error",
        f"corrupted forecast at the $1.5M-analogue budget ({_HOURS} h)",
        table(("budgeter", "spend $", "spend/budget", "ordinary", "over h"), rows),
    )

    # Premium guaranteed under either budgeter, corrupted forecast or not.
    assert plain.premium_throughput_fraction > 1 - 1e-6
    assert adaptive.premium_throughput_fraction > 1 - 1e-6
    # Adaptive tracks the monthly budget at least as well.
    plain_err = abs(plain.total_cost / budget_slice - 1.0)
    adaptive_err = abs(adaptive.total_cost / budget_slice - 1.0)
    assert adaptive_err <= plain_err + 0.02
    # Neither blows through the budget slice by more than a few percent.
    assert adaptive.total_cost <= budget_slice * 1.05
