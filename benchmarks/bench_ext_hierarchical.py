"""Extension: hierarchical vs centralized dispatch at scale (Section IX).

The paper flags the centralized capper's scalability as future work.
This benchmark dispatches one hour across a growing number of sites
both ways and reports bill optimality (hierarchical / centralized) and
solve time. Expected shape: the hierarchical bill stays within a few
percent of the centralized optimum while its coordinator stays small.
"""

import time

import pytest

from repro.core import CostMinimizer, HierarchicalDispatcher, Region, SiteHour

from _report import report, table


def _replicated_sites(world, n_sites: int, t: int = 40) -> list[SiteHour]:
    out = []
    for i in range(n_sites):
        base = world.sites[i % 3].hour(t)
        out.append(
            SiteHour(
                name=f"{base.name}-{i}",
                affine=base.affine,
                policy=base.policy,
                background_mw=base.background_mw * (0.85 + 0.03 * (i % 9)),
                power_cap_mw=base.power_cap_mw,
                max_rate_rps=base.max_rate_rps,
            )
        )
    return out


def _regions_of(sites: list[SiteHour], per_region: int) -> list[Region]:
    return [
        Region(f"region{r}", tuple(sites[r : r + per_region]))
        for r in range(0, len(sites), per_region)
    ]


def test_ext_hierarchical_scaling(benchmark, world):
    rows = []
    quality = {}
    for n_sites in (6, 12, 24):
        sites = _replicated_sites(world, n_sites)
        lam = 0.45 * sum(s.max_rate_rps for s in sites)

        t0 = time.perf_counter()
        central = CostMinimizer().solve(sites, lam)
        t_central = time.perf_counter() - t0

        disp = HierarchicalDispatcher(samples_per_region=8)
        regions = _regions_of(sites, per_region=3)
        t0 = time.perf_counter()
        hier = disp.solve(regions, lam)
        t_hier = time.perf_counter() - t0

        ratio = hier.predicted_cost / central.predicted_cost
        quality[n_sites] = ratio
        rows.append(
            (
                n_sites,
                f"{central.predicted_cost:,.0f}",
                f"{hier.predicted_cost:,.0f}",
                f"{ratio:.4f}",
                f"{t_central * 1e3:.0f}",
                f"{t_hier * 1e3:.0f}",
            )
        )

    # Microbenchmark the 24-site hierarchical solve itself.
    sites = _replicated_sites(world, 24)
    lam = 0.45 * sum(s.max_rate_rps for s in sites)
    disp = HierarchicalDispatcher(samples_per_region=8)
    regions = _regions_of(sites, 3)
    benchmark.pedantic(lambda: disp.solve(regions, lam), rounds=3, iterations=1)

    report(
        "ext_hierarchical",
        "hierarchical vs centralized dispatch",
        table(
            ("sites", "central $", "hier $", "hier/central", "t_c ms", "t_h ms"),
            rows,
        ),
    )

    for n_sites, ratio in quality.items():
        assert ratio >= 1.0 - 1e-6, "hierarchy cannot beat the centralized optimum"
        assert ratio <= 1.10, f"hierarchy too suboptimal at {n_sites} sites"
