"""Figure 10: monthly throughput across a series of monthly budgets.

The paper sweeps budgets {$0.5M, $1.0M, $1.5M, $2.0M, $2.5M} and plots
served vs offered requests per class. Claims reproduced:

* premium requests are fully served at every budget;
* ordinary throughput rises monotonically with the budget;
* at the abundant level everything is served;
* at the next-to-abundant level a small sliver of ordinary requests is
  lost to imperfect historical budgeting (the paper's 0.99%).
"""

import os

import pytest

from repro.experiments import PAPER_BUDGET_LEVELS
from repro.sim.sweep import capped_month_metric, run_sweep, sweep_grid

from conftest import BENCH_HOURS, monthly_budget_from, run_once

from _report import report, table


@pytest.fixture(scope="module")
def sweep(world, simulator, uncapped):
    """The paper's five budget levels through the scenario-sweep engine.

    Budget levels are independent given the world, so they form a
    one-axis sweep; ``REPRO_BENCH_WORKERS=N`` fans them over a process
    pool (results are identical to the serial run — each worker
    regenerates the same seed-keyed world).
    """
    labels = list(PAPER_BUDGET_LEVELS)
    scenarios = sweep_grid(
        monthly_budget=[
            monthly_budget_from(uncapped, world, PAPER_BUDGET_LEVELS[label])
            for label in labels
        ]
    )
    for sc in scenarios:
        sc["hours"] = BENCH_HOURS
    results = run_sweep(
        capped_month_metric,
        scenarios,
        workers=int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
    )
    return dict(zip(labels, results))


def test_fig10_budget_sweep(benchmark, world, simulator, uncapped, sweep):
    benchmark.pedantic(
        lambda: simulator.run_capping(
            world.budgeter(monthly_budget_from(uncapped, world, 0.85)),
            hours=min(48, BENCH_HOURS),
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for label, res in sweep.items():
        rows.append(
            (
                label,
                f"{PAPER_BUDGET_LEVELS[label]:.2f}",
                f"{res.premium_throughput_fraction:.4f}",
                f"{res.ordinary_throughput_fraction:.4f}",
                f"{res.total_cost:,.0f}",
            )
        )
    report(
        "fig10",
        "throughput vs monthly budget",
        table(
            ("budget", "x uncapped bill", "premium", "ordinary", "spend $"), rows
        )
        + [
            "",
            "paper: premium always 1.0; ordinary 94M -> 2.3B -> 3B requests "
            "at 0.5/1.0/1.5M; all served at 2.5M; 0.99% ordinary lost at 2.0M",
        ],
    )

    ordered = [sweep[k] for k in ("500K", "1.0M", "1.5M", "2.0M", "2.5M")]
    # Premium guaranteed at every budget level.
    for res in ordered:
        assert res.premium_throughput_fraction > 1 - 1e-6
    # Ordinary throughput rises monotonically with budget.
    fractions = [r.ordinary_throughput_fraction for r in ordered]
    for lo, hi in zip(fractions, fractions[1:]):
        assert hi >= lo - 1e-9
    # Severely insufficient -> almost nothing; abundant -> everything.
    assert fractions[0] < 0.10
    assert fractions[-1] > 1 - 1e-6
    # Next-to-abundant loses only a small sliver (imperfect budgeting).
    assert 0.5 < fractions[3] <= 1.0
    # Spend grows with budget.
    costs = [r.total_cost for r in ordered]
    for lo, hi in zip(costs, costs[1:]):
        assert hi >= lo * 0.98
