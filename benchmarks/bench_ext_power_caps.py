"""Extension: supplier power caps — enforcement vs violation.

Section I: "due to the transmission limitations of the power grid, some
suppliers impose a cap on the power draw ... and penalize those price
makers heavily if this cap is exceeded. ... the power cap of each data
center site must first be enforced to avoid financial penalty."

This benchmark builds a world with binding per-site caps (80 % of each
site's peak draw) and compares strategies. Cost Capping carries the cap
inside its MILP (constraint (b)), so it re-routes around it; Min-Only's
decision model underestimates power (servers only), dispatches loads
whose *real* power busts the caps, and the local optimizers must shed
traffic — lost throughput the price-maker-aware dispatcher never
suffers.
"""

import pytest

from repro.core import PriceMode
from repro.experiments import paper_world
from repro.sim import Simulator

from conftest import BENCH_HOURS

from _report import report, table

_HOURS = max(48, BENCH_HOURS // 3)


@pytest.fixture(scope="module")
def capped_world():
    # Size the caps below each site's peak so they genuinely bind at the
    # daily traffic peak; raise demand so the network runs close to its
    # capped capacity (the regime where enforcement matters).
    probe = paper_world()
    peaks = [dc.peak_power_mw() for dc in probe.datacenters]
    cap = 0.5 * max(peaks)
    return paper_world(power_cap_mw=cap, demand_fraction=0.8), cap


def test_ext_power_caps(benchmark, capped_world):
    world, cap = capped_world
    sim = Simulator(world.sites, world.workload, world.mix)

    capping = benchmark.pedantic(
        lambda: sim.run_capping(hours=_HOURS), rounds=1, iterations=1
    )
    min_only = sim.run_min_only(PriceMode.AVG, hours=_HOURS)

    def max_power(res):
        return max(rec.power_mw for h in res.hours for rec in h.sites)

    def shed_fraction(res):
        dispatched = sum(rec.dispatched_rps for h in res.hours for rec in h.sites)
        served = sum(rec.served_rps for h in res.hours for rec in h.sites)
        return 1.0 - served / dispatched if dispatched > 0 else 0.0

    rows = [
        (
            name,
            f"{res.total_cost:,.0f}",
            f"{max_power(res):.1f}",
            f"{shed_fraction(res):.3%}",
            f"{res.ordinary_throughput_fraction:.3%}",
        )
        for name, res in (("CostCapping", capping), ("MinOnly(Avg)", min_only))
    ]
    report(
        "ext_power_caps",
        f"binding per-site power caps ({cap:.0f} MW each)",
        table(("strategy", "bill $", "max site MW", "shed", "ordinary served"), rows),
    )

    # Physical enforcement: nobody's realized draw exceeds the cap
    # (the local optimizer guarantees it for both strategies).
    assert max_power(capping) <= cap + 1e-6
    assert max_power(min_only) <= cap + 1e-6
    # Cost Capping plans around the caps: essentially nothing is shed
    # (the residual is smooth-vs-stepped model mismatch exactly at the
    # cap boundary, a few parts in 10^5).
    assert shed_fraction(capping) < 5e-4
    assert capping.premium_throughput_fraction > 1 - 1e-9
    assert capping.ordinary_throughput_fraction > 0.999
    # Min-Only's mis-modeled dispatch forces the local optimizers to
    # shed real traffic at the peaks (shedding protects premium first,
    # so the loss shows up in ordinary throughput).
    assert shed_fraction(min_only) > 0.0005
    assert min_only.ordinary_throughput_fraction < 1.0