"""Extension: day-ahead battery arbitrage against stepped prices.

Related-work extension (Urgaonkar et al., Govindan et al.): a battery
at each site shifts grid draw from expensive to cheap price levels.
Shape asserted: the planned bill never exceeds the no-battery baseline,
the plan is energy-neutral, bigger batteries save at least as much, and
with flat (Policy 0) prices there is nothing to arbitrage.
"""

import numpy as np
import pytest

from repro.core import plan_storage_schedule
from repro.datacenter import Battery
from repro.experiments import paper_world

from _report import report, table


def _day_profile(world, site_index=0, day_start=24):
    site = world.sites[site_index]
    hours = [site.hour(t) for t in range(day_start, day_start + 24)]
    base = np.array(
        [
            site.datacenter.power_mw(float(world.workload.rates_rps[t]) / 3.0)
            for t in range(day_start, day_start + 24)
        ]
    )
    return hours, base


def test_ext_storage_arbitrage(benchmark, world):
    hours, base = _day_profile(world)

    batteries = {
        "small (20 MWh / 5 MW)": Battery(20.0, 5.0, 5.0, 0.92, 0.92),
        "medium (60 MWh / 12 MW)": Battery(60.0, 12.0, 12.0, 0.92, 0.92),
        "large (150 MWh / 30 MW)": Battery(150.0, 30.0, 30.0, 0.92, 0.92),
    }
    plans = {}
    for name, battery in batteries.items():
        plans[name] = plan_storage_schedule(hours, base, battery)

    benchmark.pedantic(
        lambda: plan_storage_schedule(hours, base, batteries["medium (60 MWh / 12 MW)"]),
        rounds=3,
        iterations=1,
    )

    rows = [
        (
            name,
            f"{plan.baseline_cost:,.0f}",
            f"{plan.planned_cost:,.0f}",
            f"{plan.planned_saving:.1%}",
        )
        for name, plan in plans.items()
    ]
    report(
        "ext_storage",
        "daily bill with day-ahead battery arbitrage (DC1)",
        table(("battery", "no-battery $", "with battery $", "saving"), rows),
    )

    savings = [p.planned_saving for p in plans.values()]
    # Arbitrage never loses money and grows with battery size.
    for s in savings:
        assert s >= -1e-9
    assert savings == sorted(savings)
    assert savings[-1] > 0.01  # the large battery must find real arbitrage
    # Plans are energy-neutral.
    for plan in plans.values():
        assert plan.soc_mwh[-1] >= plan.soc_mwh[0] - 1e-6

    # Flat prices (Policy 0): no arbitrage opportunity for a lossy battery.
    flat_world = paper_world(0, max_servers=world.datacenters[0].max_servers)
    flat_hours, flat_base = _day_profile(flat_world)
    flat_plan = plan_storage_schedule(
        flat_hours, flat_base, batteries["large (150 MWh / 30 MW)"]
    )
    assert flat_plan.planned_saving == pytest.approx(0.0, abs=1e-6)
