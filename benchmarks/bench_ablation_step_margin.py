"""Ablation: the breakpoint safety margin in the stepped-cost MILP.

The optimizer decides with a smooth affine power model but is billed on
the exact stepped one, which runs slightly hotter. Without a safety
margin the MILP parks sites exactly below price breakpoints, the
realized draw crosses them, and the whole site bill reprices one level
up (we observed this turning Cost Capping's savings negative). This
ablation quantifies the effect: margin 0 vs the default 1% vs a
conservative 5%.
"""

import pytest

from repro.core import BillCapper, CostMinimizer, ThroughputMaximizer

from conftest import BENCH_HOURS, run_once

from _report import report, table

_HOURS = max(48, BENCH_HOURS // 3)


def _run(simulator, margin: float) -> float:
    capper = BillCapper(
        cost_minimizer=CostMinimizer(step_margin_frac=margin),
        throughput_maximizer=ThroughputMaximizer(step_margin_frac=margin),
    )
    return simulator.run_capping(capper=capper, hours=_HOURS).total_cost


def test_ablation_step_margin(benchmark, simulator):
    default = run_once(benchmark, lambda: _run(simulator, 0.01))
    none = _run(simulator, 0.0)
    wide = _run(simulator, 0.05)

    rows = [
        ("0% (no margin)", f"{none:,.0f}"),
        ("1% (default)", f"{default:,.0f}"),
        ("5% (conservative)", f"{wide:,.0f}"),
    ]
    report(
        "ablation_step_margin",
        "realized bill vs breakpoint safety margin",
        table(("margin", "realized bill $"), rows)
        + [
            "",
            f"no-margin penalty vs default: {none / default - 1:+.1%}",
            f"wide-margin penalty vs default: {wide / default - 1:+.1%}",
        ],
    )

    # No margin lets realized prices jump across breakpoints: pricier.
    assert none >= default * 0.999
    # An over-wide margin gives up cheap headroom: also no cheaper.
    assert wide >= default * 0.999
