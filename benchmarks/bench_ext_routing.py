"""Extension: bill impact of realistic (imperfect) DNS request routing.

The paper assumes the dispatching fractions the capper computes are
realized exactly. Real weighted-DNS routing deviates (resolution
granularity, TTL caching lag). This benchmark pushes a day of optimal
dispatch decisions through the DNS simulator at several resolver-
population fidelities and measures the realized bill against the ideal.

Shape asserted: more/less skewed resolver populations produce smaller/
larger routing error; the bill penalty stays single-digit percent at
realistic fidelity.
"""

import numpy as np
import pytest

from repro.core import CostMinimizer
from repro.routing import ResolverPopulation, WeightedDnsDispatcher, routing_error

from _report import report, table

_HOURS = 24


def _run_day(world, population, seed=11, step_margin_frac=0.01):
    solver = CostMinimizer(step_margin_frac=step_margin_frac)
    dns = WeightedDnsDispatcher(
        [s.name for s in world.sites], population, seed=seed
    )
    ideal, realized, errors = 0.0, 0.0, []
    for t in range(_HOURS):
        sh = [s.hour(t) for s in world.sites]
        lam = float(world.workload.rates_rps[t])
        decision = solver.solve(sh, lam)
        targets = {a.site: a.rate_rps for a in decision.allocations}
        fracs = dns.dispatch_hour({k: max(v, 1e-9) for k, v in targets.items()})
        errors.append(
            routing_error(fracs, {k: v / lam for k, v in targets.items()})
        )
        for site in world.sites:
            cap = site.datacenter.max_throughput_rps()
            ideal += site.evaluate_hour(t, targets[site.name])[2]
            realized += site.evaluate_hour(
                t, min(fracs[site.name] * lam, cap)
            )[2]
    return ideal, realized, float(np.mean(errors))


def test_ext_routing_imprecision(benchmark, world):
    populations = {
        "coarse (50 resolvers, skew 1.2)": ResolverPopulation(50, 300.0, 1.2),
        "typical (2k resolvers, skew 0.8)": ResolverPopulation(2000, 300.0, 0.8),
        "fine (50k resolvers, skew 0.3)": ResolverPopulation(50_000, 300.0, 0.3),
    }
    results = {
        name: _run_day(world, pop) for name, pop in populations.items()
    }
    benchmark.pedantic(
        lambda: _run_day(world, populations["typical (2k resolvers, skew 0.8)"]),
        rounds=1,
        iterations=1,
    )

    # Hardening: a wider breakpoint margin absorbs routing noise (the
    # optimizer stops parking sites right below price steps).
    hard_ideal, hard_realized, hard_err = _run_day(
        world,
        populations["typical (2k resolvers, skew 0.8)"],
        step_margin_frac=0.06,
    )

    rows = [
        (
            name,
            f"{err:.4f}",
            f"{ideal:,.0f}",
            f"{realized:,.0f}",
            f"{realized / ideal - 1:+.2%}",
        )
        for name, (ideal, realized, err) in results.items()
    ]
    rows.append(
        (
            "typical + 6% step margin",
            f"{hard_err:.4f}",
            f"{hard_ideal:,.0f}",
            f"{hard_realized:,.0f}",
            f"{hard_realized / hard_ideal - 1:+.2%}",
        )
    )
    report(
        "ext_routing",
        "bill impact of weighted-DNS imprecision (one day)",
        table(("resolver population", "mean TV error", "ideal $", "realized $", "penalty"), rows)
        + [
            "",
            "Finding: the optimizer parks sites just below price breakpoints,",
            "so even a ~3% routing error crosses steps and reprices whole",
            "sites; widening the decision margin trades a little ideal cost",
            "for robustness to routing noise.",
        ],
    )

    errs = [err for _, _, err in results.values()]
    # Finer populations route more faithfully.
    assert errs[2] < errs[0]
    # Fine-grained routing realizes the ideal bill.
    ideal_f, realized_f, _ = results["fine (50k resolvers, skew 0.3)"]
    assert realized_f <= ideal_f * 1.02
    # At typical fidelity the naive margin suffers a visible penalty...
    ideal_t, realized_t, _ = results["typical (2k resolvers, skew 0.8)"]
    naive_penalty = realized_t / ideal_t - 1
    assert naive_penalty > 0.02
    # ... and the hardened margin cuts that penalty substantially.
    hard_penalty = hard_realized / hard_ideal - 1
    assert hard_penalty < naive_penalty * 0.7
    assert hard_realized < realized_t
