"""End-to-end perf baseline for the vectorized physics/pricing layer.

Three tracked numbers, written to ``BENCH_vectorized.json`` at the repo
root (the companion of ``BENCH_solver.json``, which tracks the MILP
engine itself):

* **batched power+price** — evaluating the exact stepped power model
  and the step-price curves over a (13-site x candidate-rate) grid via
  :class:`SiteBank` / :class:`CurveBank` versus the scalar per-site
  object path. The two are bit-identical; only the clock differs.
* **end-to-end monthly capping** — a Cost Capping simulation on the
  default hot path (enumeration kernel + batched realize) versus the
  PR 3 baseline configuration (MILP-only solves, scalar realize).
* **sweep scaling** — a seed sweep through ``repro.sim.sweep`` at 4
  workers versus serial. Only meaningful on a multi-core host, so the
  criterion is gated on ``os.cpu_count()``.

Run as a script — ``PYTHONPATH=src python benchmarks/bench_vectorized.py
[--quick]``. CI runs the quick mode, validates the JSON shape and the
speedup criteria (the sweep criterion only where applicable), and
uploads the artifact.
"""

import json
import os
import pathlib
import time

import numpy as np

#: Where the machine-readable baseline lands (repo root).
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_vectorized.json"

#: Acceptance floors (see ARCHITECTURE.md, "Performance"). Unlike the
#: solver baseline these ARE asserted in CI: the margins are wide
#: enough (measured 30x+ / 5x+ on a shared runner) to survive noise.
CRITERIA = {
    "batched_power_price_speedup_min": 5.0,
    "e2e_capping_speedup_min": 1.5,
    "sweep_speedup_min_at_4_workers": 2.0,
}


def _thirteen_dcs():
    """The paper's 3 data centers replicated to 13, cooling perturbed."""
    import dataclasses

    from repro.datacenter import CoolingModel
    from repro.experiments import paper_world

    world = paper_world()
    out, policies = [], []
    for i in range(13):
        site = world.sites[i % 3]
        dc = site.datacenter
        out.append(
            dataclasses.replace(
                dc,
                name=f"{dc.name}-{i}",
                cooling=CoolingModel(dc.cooling.coe * (0.9 + 0.02 * i)),
            )
        )
        policies.append(site.policy)
    return out, policies


def _min_of(passes, fn) -> float:
    """Fastest of ``passes`` timed runs (guards against scheduler noise)."""
    best = float("inf")
    for _ in range(passes):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _batched_power_price_case(quick: bool) -> dict:
    """Scalar vs batched power+price over a 13-site candidate grid."""
    from repro.datacenter import SiteBank
    from repro.powermarket import CurveBank

    dcs, policies = _thirteen_dcs()
    n_candidates = 32 if quick else 128
    passes = 2 if quick else 3

    fracs = np.linspace(0.0, 0.999, n_candidates)
    tops = np.array([dc.fleet_throughput_rps() for dc in dcs])
    rates = tops[:, None] * fracs[None, :]
    backgrounds = np.array([40.0 + 7.0 * i for i in range(len(dcs))])

    def scalar():
        out = np.empty_like(rates)
        for i, (dc, pol) in enumerate(zip(dcs, policies)):
            for j in range(n_candidates):
                power = dc.power_mw(rates[i, j])
                out[i, j] = pol.price(power + backgrounds[i])
        return out

    bank = SiteBank(dcs)
    curves = CurveBank.from_policies(policies)

    def batched():
        power = bank.power_mw(rates)
        return curves.site_price(power, backgrounds)

    # The contract behind the timing: same bits out of both paths.
    assert np.array_equal(scalar(), batched())

    scalar_s = _min_of(passes, scalar)
    batched_s = _min_of(passes, batched)
    evals = rates.size
    speedup = scalar_s / batched_s if batched_s > 0 else float("inf")
    return {
        "sites": len(dcs),
        "candidates_per_site": n_candidates,
        "scalar_us_per_eval": 1e6 * scalar_s / evals,
        "batched_us_per_eval": 1e6 * batched_s / evals,
        "batched_speedup": speedup,
        "meets_criterion": speedup
        >= CRITERIA["batched_power_price_speedup_min"],
    }


def _e2e_capping_case(quick: bool) -> dict:
    """Monthly capping sim: default hot path vs the PR 3 baseline path."""
    from repro.core import DispatchModelCache
    from repro.experiments import paper_world
    from repro.sim import Simulator

    world = paper_world()
    hours = 24 if quick else 72
    passes = 2

    def run(batched: bool, enum_kernel: bool):
        prev = DispatchModelCache.default_use_enum_kernel
        DispatchModelCache.default_use_enum_kernel = enum_kernel
        try:
            sim = Simulator(
                world.sites, world.workload, world.mix, batched=batched
            )
            return sim.run_capping(hours=hours)
        finally:
            DispatchModelCache.default_use_enum_kernel = prev

    # Same bills either way (to solver tolerance: the enumeration
    # kernel and branch-and-bound may pick different alternate optima,
    # so the realized sums can differ in the last ULPs) — the speedup
    # is free. Bit identity of batched-vs-scalar realization under
    # *identical* decisions is pinned by tests/sim/test_batched_realize.
    baseline_cost = run(False, False).total_cost
    vector_cost = run(True, True).total_cost
    assert abs(baseline_cost - vector_cost) <= 1e-9 * abs(baseline_cost)

    baseline_s = _min_of(passes, lambda: run(False, False))
    vector_s = _min_of(passes, lambda: run(True, True))
    speedup = baseline_s / vector_s if vector_s > 0 else float("inf")
    return {
        "hours": hours,
        "total_cost": vector_cost,
        "baseline_s": baseline_s,
        "vectorized_s": vector_s,
        "e2e_speedup": speedup,
        "meets_criterion": speedup >= CRITERIA["e2e_capping_speedup_min"],
    }


def _sweep_scaling_case(quick: bool) -> dict:
    """Seed sweep at 4 workers vs serial; gated on available cores."""
    from repro.sim.sweep import run_sweep, strategy_metric, sweep_grid

    cpu_count = os.cpu_count() or 1
    # Fixed workload even under --quick: scaling is only measurable
    # when each scenario is big enough to amortize the pool startup.
    hours = 48
    scenarios = sweep_grid(seed=list(range(12)))
    for sc in scenarios:
        sc.update(strategy="capping", hours=hours)

    def costs(workers):
        return [
            r.total_cost
            for r in run_sweep(strategy_metric, scenarios, workers=workers)
        ]

    t0 = time.perf_counter()
    serial = costs(1)
    serial_s = time.perf_counter() - t0

    applicable = cpu_count >= 4
    out = {
        "scenarios": len(scenarios),
        "hours": hours,
        "cpu_count": cpu_count,
        "workers": 4,
        "serial_s": serial_s,
        "parallel_s": None,
        "sweep_speedup": None,
        "criterion_applicable": applicable,
        # Not applicable == not failed: a 1-core host cannot scale.
        "meets_criterion": True,
    }
    if cpu_count >= 2:
        t0 = time.perf_counter()
        parallel = costs(4)
        out["parallel_s"] = time.perf_counter() - t0
        assert parallel == serial  # pooled results must match serial
        out["sweep_speedup"] = serial_s / out["parallel_s"]
        if applicable:
            out["meets_criterion"] = (
                out["sweep_speedup"]
                >= CRITERIA["sweep_speedup_min_at_4_workers"]
            )
    return out


def run_vectorized_suite(quick: bool = False) -> dict:
    """Run all cases and return the BENCH_vectorized.json payload."""
    import platform

    import numpy
    import scipy

    cases = {
        "batched_power_price_13_sites": _batched_power_price_case(quick),
        "e2e_monthly_capping": _e2e_capping_case(quick),
        "sweep_scaling": _sweep_scaling_case(quick),
    }
    return {
        "benchmark": "vectorized",
        "schema_version": 1,
        "quick": quick,
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
        },
        "cases": cases,
        "criteria": {
            **CRITERIA,
            "met": all(c["meets_criterion"] for c in cases.values()),
        },
    }


def _main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Vectorized-layer perf baseline; writes "
        "BENCH_vectorized.json at the repo root."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink grids/horizons for CI smoke runs (same JSON shape)",
    )
    parser.add_argument(
        "--out", default=str(BENCH_JSON), help="output path for the JSON"
    )
    args = parser.parse_args(argv)

    payload = run_vectorized_suite(quick=args.quick)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out}")
    c = payload["cases"]["batched_power_price_13_sites"]
    print(
        f"  power+price: scalar {c['scalar_us_per_eval']:.1f} us/eval, "
        f"batched {c['batched_us_per_eval']:.2f} us/eval "
        f"-> {c['batched_speedup']:.1f}x"
    )
    c = payload["cases"]["e2e_monthly_capping"]
    print(
        f"  e2e capping ({c['hours']}h): baseline {c['baseline_s']:.2f}s, "
        f"vectorized {c['vectorized_s']:.2f}s -> {c['e2e_speedup']:.1f}x"
    )
    c = payload["cases"]["sweep_scaling"]
    if c["sweep_speedup"] is None:
        print(f"  sweep: serial {c['serial_s']:.2f}s "
              f"(cpu_count={c['cpu_count']}, scaling not applicable)")
    else:
        print(
            f"  sweep: serial {c['serial_s']:.2f}s, 4 workers "
            f"{c['parallel_s']:.2f}s -> {c['sweep_speedup']:.1f}x "
            f"(cpu_count={c['cpu_count']}, "
            f"gated={c['criterion_applicable']})"
        )
    print(f"criteria met: {payload['criteria']['met']}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(_main())
