"""Figure 1: locational pricing policies from the PJM five-bus system.

The paper's Figure 1 plots the step price at consumer buses B, C, D as
a function of system load, derived from the 5-bus LMP example. This
benchmark regenerates the whole curve with the DC-OPF sweep and checks
its qualitative anatomy: a flat $10 Brighton-marginal region, a step
when Brighton's 600 MW bind, and bus-differentiated prices once the
Brighton-Sundance line congests near 711.8 MW.
"""

import numpy as np

from repro.powermarket import DcOpf, LOAD_SHARES, derive_step_policies, pjm5bus

from _report import report, table


def test_fig1_lmp_step_policies(benchmark):
    grid = pjm5bus()
    opf = DcOpf(grid)
    loads = np.arange(25.0, 901.0, 25.0)

    sweep = benchmark.pedantic(
        lambda: opf.lmp_sweep(LOAD_SHARES, loads), rounds=1, iterations=1
    )

    rows = [
        (f"{load:.0f}",)
        + tuple(f"{sweep[bus][i]:.2f}" for bus in ("B", "C", "D"))
        for i, load in enumerate(loads)
    ]
    report(
        "fig1",
        "LMP at B/C/D vs system load (PJM 5-bus)",
        table(("system MW", "LMP B", "LMP C", "LMP D"), rows),
    )

    # -- shape assertions (paper Section II) --------------------------------
    b, c, d = (sweep[k] for k in ("B", "C", "D"))
    # Flat $10 while Brighton is marginal.
    low = loads < 590
    assert np.allclose(b[low], 10.0, atol=1e-4)
    # Step after Brighton's 600 MW limit binds.
    mid = (loads > 610) & (loads < 700)
    assert np.all(b[mid] > 10.0)
    # Congestion splits the buses beyond ~712 MW; D is the priciest.
    high = loads > 725
    assert np.all(d[high] > c[high])
    assert np.all(c[high] > b[high])
    # Prices never decrease with load at any bus.
    for series in (b, c, d):
        valid = ~np.isnan(series)
        assert np.all(np.diff(series[valid]) >= -1e-6)

    # The compressed policies match the stated step structure.
    pols = derive_step_policies(step_mw=5.0)
    for pol in pols.values():
        assert pol.prices[0] == 10.0
        assert 2 <= pol.n_levels <= 5
