"""Load harness for the streaming control plane (``repro serve``).

Replays deterministic seeded tick storms through the service stack and
writes ``BENCH_service.json`` at the repo root (companion of
``BENCH_solver.json`` and ``BENCH_vectorized.json``). Tracked numbers:

* **decisions per second** — sustained dispatch throughput of the
  asyncio service free-running a bursty storm (every tick crosses the
  λ-delta threshold, so this measures the full observe → dispatch →
  realize path, not tick parsing);
* **decision latency** — p50/p99 wall time of one ``on_tick`` call
  that produced a decision (solver + ground-truth realization);
* **tick-to-decision staleness** — in *simulated* seconds, how far the
  λ feed can drift from the decision in force: p50/p99/max over each
  tick's distance to the most recent dispatch. Bounded by the trigger
  policy's ``max_staleness_s`` by construction; the bench asserts it.

The harness also replays the identical storm through the synchronous
:func:`~repro.service.run_serial` reference and asserts the two
decision logs are byte-identical — the determinism contract that makes
the service's numbers trustworthy (``serial_async_identical``).

Run as a script: ``PYTHONPATH=src python benchmarks/bench_service.py
[--quick]``. CI runs quick mode and validates the JSON shape.
"""

import asyncio
import json
import os
import pathlib
import time

#: Where the machine-readable baseline lands (repo root).
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Acceptance floors. Decisions/s is hardware-sensitive, so the floor
#: is deliberately conservative (a single enumeration-kernel dispatch
#: over 3 sites measures in the low milliseconds on any recent CPU).
CRITERIA = {
    "decisions_per_s_min": 5.0,
    "staleness_within_policy": True,
}


def _storm(hours: int, ticks_per_hour: int, seed: int):
    """A bursty tick storm plus the world/loop factory driving it."""
    from repro.experiments import paper_world
    from repro.service import TriggerPolicy, bursty_ticks
    from repro.sim.engine import Engine

    world = paper_world(policy_id=1, seed=7)
    engine = Engine(world.sites, world.workload, world.mix)
    ticks = bursty_ticks(
        world.workload,
        ticks_per_hour=ticks_per_hour,
        hours=hours,
        ca2=6.0,
        price_jitter=0.04,
        sites=tuple(s.name for s in world.sites),
        seed=seed,
    )
    trigger = TriggerPolicy(
        lambda_delta=0.02, price_delta=0.02,
        debounce_s=60.0, max_staleness_s=900.0,
    )
    return world, engine, ticks, trigger


def _make_loop(world, engine, trigger, hours: int):
    from repro.service import ControlLoop

    return ControlLoop(
        engine,
        "capping",
        trigger=trigger,
        budgeter=world.budgeter(2_000_000.0),
        hours=hours,
    )


def _percentile(sorted_vals, q: float) -> float:
    if not sorted_vals:
        return 0.0
    rank = max(0, min(len(sorted_vals) - 1, round(q * (len(sorted_vals) - 1))))
    return sorted_vals[rank]


def _staleness(ticks, events, max_staleness_s: float) -> dict:
    """Sim-time distance from each λ tick to the decision then in force."""
    dispatch_times = [e.time_s for e in events]
    samples = []
    j = -1
    for tick in ticks:
        while j + 1 < len(dispatch_times) and dispatch_times[j + 1] <= tick.time_s:
            j += 1
        if j >= 0:
            samples.append(tick.time_s - dispatch_times[j])
    samples.sort()
    return {
        "p50_s": _percentile(samples, 0.50),
        "p99_s": _percentile(samples, 0.99),
        "max_s": samples[-1] if samples else 0.0,
        "within_policy": (not samples) or samples[-1] <= max_staleness_s,
    }


def _tick_storm_case(quick: bool) -> dict:
    import tempfile

    from repro.service import ControlPlaneService, run_serial

    hours = 6 if quick else 24
    ticks_per_hour = 30 if quick else 60
    world, engine, ticks, trigger = _storm(hours, ticks_per_hour, seed=3)

    # Reference: synchronous serial drive (also warms the engine memos
    # so the async timing below measures dispatch, not memo building).
    serial_loop = _make_loop(world, engine, trigger, hours)
    serial_events = run_serial(serial_loop, ticks)
    serial_log = [e.to_json() for e in serial_events]

    # Timed: the asyncio service free-running the same storm, writing
    # its real decision log so the identity check covers the wire
    # format, not just the in-memory events.
    log = pathlib.Path(tempfile.mkdtemp(prefix="bench_service_")) / "log.jsonl"
    async_loop = _make_loop(world, engine, trigger, hours)
    service = ControlPlaneService(
        async_loop, ticks, http=False, decision_log=log, handle_signals=False
    )
    t0 = time.perf_counter()
    asyncio.run(service.run())
    wall_s = time.perf_counter() - t0

    identical = log.read_text().splitlines() == serial_log

    lat = sorted(service.decide_wall_s)
    staleness = _staleness(ticks, serial_events, trigger.max_staleness_s)
    decisions = async_loop.decisions
    return {
        "hours": hours,
        "ticks": service.ticks_processed,
        "decisions": decisions,
        "wall_s": wall_s,
        "decisions_per_s": decisions / wall_s if wall_s > 0 else 0.0,
        "p50_decision_ms": _percentile(lat, 0.50) * 1e3,
        "p99_decision_ms": _percentile(lat, 0.99) * 1e3,
        "p50_staleness_s": staleness["p50_s"],
        "p99_staleness_s": staleness["p99_s"],
        "max_staleness_s": staleness["max_s"],
        "staleness_within_policy": staleness["within_policy"],
        "serial_async_identical": identical,
        "meets_criterion": (
            identical
            and staleness["within_policy"]
            and decisions / wall_s >= CRITERIA["decisions_per_s_min"]
        ),
    }


def _resume_case(quick: bool) -> dict:
    """Kill the service mid-storm, resume, diff the merged log."""
    import tempfile

    from repro.service import (
        ControlPlaneService,
        load_service_checkpoint,
        restore_loop,
        run_serial,
        truncate_jsonl,
    )

    hours = 4 if quick else 8
    world, engine, ticks, trigger = _storm(hours, 12, seed=5)
    reference = [
        e.to_json()
        for e in run_serial(_make_loop(world, engine, trigger, hours), ticks)
    ]

    tmp = pathlib.Path(tempfile.mkdtemp(prefix="bench_service_"))
    log, ckpt = tmp / "decisions.jsonl", tmp / "ckpt.json"
    cut = len(ticks) // 2
    service = ControlPlaneService(
        _make_loop(world, engine, trigger, hours), ticks,
        http=False, decision_log=log, checkpoint_path=ckpt,
        handle_signals=False,
    )

    async def _killed_run():
        async def killer():
            while service.ticks_processed < cut:
                await asyncio.sleep(0)
            service.request_stop()
        await asyncio.gather(service.run(), killer())

    asyncio.run(_killed_run())
    payload = load_service_checkpoint(ckpt)
    truncate_jsonl(log, payload["decisions_logged"])
    resumed = ControlPlaneService(
        restore_loop(engine, payload), ticks,
        http=False, decision_log=log, checkpoint_path=ckpt,
        start_tick=payload["next_tick"],
        decisions_logged=payload["decisions_logged"],
        handle_signals=False,
    )
    asyncio.run(resumed.run())
    merged = log.read_text().splitlines()
    identical = merged == reference
    return {
        "hours": hours,
        "killed_at_tick": cut,
        "decisions": len(reference),
        "merged_log_identical": identical,
        "meets_criterion": identical,
    }


def run_service_suite(quick: bool = False) -> dict:
    """Run all cases and return the BENCH_service.json payload."""
    import platform

    import numpy

    cases = {
        "tick_storm": _tick_storm_case(quick),
        "kill_resume": _resume_case(quick),
    }
    return {
        "benchmark": "service",
        "schema_version": 1,
        "quick": quick,
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
        },
        "cases": cases,
        "criteria": {
            **CRITERIA,
            "met": all(c["meets_criterion"] for c in cases.values()),
        },
    }


def _main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Streaming-control-plane load harness; writes "
        "BENCH_service.json at the repo root."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the storm for CI smoke runs (same JSON shape)",
    )
    parser.add_argument(
        "--out", default=str(BENCH_JSON), help="output path for the JSON"
    )
    args = parser.parse_args(argv)

    payload = run_service_suite(quick=args.quick)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out}")
    c = payload["cases"]["tick_storm"]
    print(
        f"  tick storm ({c['hours']}h, {c['ticks']} ticks): "
        f"{c['decisions']} decisions in {c['wall_s']:.2f}s "
        f"-> {c['decisions_per_s']:.1f}/s, "
        f"p50 {c['p50_decision_ms']:.1f}ms p99 {c['p99_decision_ms']:.1f}ms"
    )
    print(
        f"  staleness: p50 {c['p50_staleness_s']:.0f}s "
        f"p99 {c['p99_staleness_s']:.0f}s max {c['max_staleness_s']:.0f}s; "
        f"serial==async: {c['serial_async_identical']}"
    )
    c = payload["cases"]["kill_resume"]
    print(
        f"  kill/resume ({c['hours']}h): merged log identical: "
        f"{c['merged_log_identical']}"
    )
    print(f"  criteria met: {payload['criteria']['met']}")
    return 0 if payload["criteria"]["met"] else 1


if __name__ == "__main__":
    raise SystemExit(_main())
