"""Load harness for the streaming control plane (``repro serve``).

Replays deterministic seeded tick storms through the service stack and
writes ``BENCH_service.json`` at the repo root (companion of
``BENCH_solver.json`` and ``BENCH_vectorized.json``). Tracked numbers:

* **decisions per second** — sustained dispatch throughput of the
  asyncio service free-running a bursty storm (every tick crosses the
  λ-delta threshold, so this measures the full observe → dispatch →
  realize path, not tick parsing);
* **decision latency** — p50/p99 wall time of one ``on_tick`` call
  that produced a decision (solver + ground-truth realization);
* **push latency** — p50/p99 wall time from the control loop producing
  a decision to the read model publishing it to subscribers (the
  push-based delivery path behind ``/decisions/stream``);
* **tick-to-decision staleness** — in *simulated* seconds, how far the
  λ feed can drift from the decision in force: p50/p99/max over each
  tick's distance to the most recent dispatch. Bounded by the trigger
  policy's ``max_staleness_s`` by construction; the bench asserts it.
* **shard scaling** — aggregate decisions/s of the multi-process
  sharded plane (``repro serve --workers N``) at 1 vs 4 workers over
  an 8-region scaled fleet. The ≥2× speedup floor only applies on
  machines with ≥4 cores; below that the case still runs (the merged
  logs must stay byte-identical) but the speedup check records a skip
  reason instead of failing.
* **slow-subscriber decoupling** — a stalled ``/decisions/stream``
  subscriber must not inflate the control loop's p99 decision latency:
  the read model drops oldest records per subscriber rather than
  back-pressuring the loop.

The harness also replays the identical storm through the synchronous
:func:`~repro.service.run_serial` reference and asserts the two
decision logs are byte-identical — the determinism contract that makes
the service's numbers trustworthy (``serial_async_identical``).

Run as a script: ``PYTHONPATH=src python benchmarks/bench_service.py
[--quick]``. CI runs quick mode and validates the JSON shape.
"""

import asyncio
import json
import os
import pathlib
import time

#: Where the machine-readable baseline lands (repo root).
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Worker counts the shard-scaling case compares.
SHARD_WORKERS = (1, 4)

#: Acceptance floors. Decisions/s is hardware-sensitive, so the floor
#: is deliberately conservative (a single enumeration-kernel dispatch
#: over 3 sites measures in the low milliseconds on any recent CPU).
#: The shard speedup floor is gated on ``shard_min_cores`` — on smaller
#: machines the case records a skip reason instead of a verdict. The
#: slow-subscriber check is a ratio with an absolute grace term so
#: timer noise on near-zero latencies cannot fail it spuriously.
CRITERIA = {
    "decisions_per_s_min": 5.0,
    "staleness_within_policy": True,
    "push_p99_ms_max": 10.0,
    "shard_speedup_min": 2.0,
    "shard_min_cores": 4,
    "slow_subscriber_p99_factor_max": 2.0,
    "slow_subscriber_p99_grace_ms": 1.0,
}


def _storm(hours: int, ticks_per_hour: int, seed: int):
    """A bursty tick storm plus the world/loop factory driving it."""
    from repro.experiments import paper_world
    from repro.service import TriggerPolicy, bursty_ticks
    from repro.sim.engine import Engine

    world = paper_world(policy_id=1, seed=7)
    engine = Engine(world.sites, world.workload, world.mix)
    ticks = bursty_ticks(
        world.workload,
        ticks_per_hour=ticks_per_hour,
        hours=hours,
        ca2=6.0,
        price_jitter=0.04,
        sites=tuple(s.name for s in world.sites),
        seed=seed,
    )
    trigger = TriggerPolicy(
        lambda_delta=0.02, price_delta=0.02,
        debounce_s=60.0, max_staleness_s=900.0,
    )
    return world, engine, ticks, trigger


def _make_loop(world, engine, trigger, hours: int):
    from repro.service import ControlLoop

    return ControlLoop(
        engine,
        "capping",
        trigger=trigger,
        budgeter=world.budgeter(2_000_000.0),
        hours=hours,
    )


def _percentile(sorted_vals, q: float) -> float:
    if not sorted_vals:
        return 0.0
    rank = max(0, min(len(sorted_vals) - 1, round(q * (len(sorted_vals) - 1))))
    return sorted_vals[rank]


def _staleness(ticks, events, max_staleness_s: float) -> dict:
    """Sim-time distance from each λ tick to the decision then in force."""
    dispatch_times = [e.time_s for e in events]
    samples = []
    j = -1
    for tick in ticks:
        while j + 1 < len(dispatch_times) and dispatch_times[j + 1] <= tick.time_s:
            j += 1
        if j >= 0:
            samples.append(tick.time_s - dispatch_times[j])
    samples.sort()
    return {
        "p50_s": _percentile(samples, 0.50),
        "p99_s": _percentile(samples, 0.99),
        "max_s": samples[-1] if samples else 0.0,
        "within_policy": (not samples) or samples[-1] <= max_staleness_s,
    }


def _tick_storm_case(quick: bool) -> dict:
    import tempfile

    from repro.service import ControlPlaneService, run_serial

    hours = 6 if quick else 24
    ticks_per_hour = 30 if quick else 60
    world, engine, ticks, trigger = _storm(hours, ticks_per_hour, seed=3)

    # Reference: synchronous serial drive (also warms the engine memos
    # so the async timing below measures dispatch, not memo building).
    serial_loop = _make_loop(world, engine, trigger, hours)
    serial_events = run_serial(serial_loop, ticks)
    serial_log = [e.to_json() for e in serial_events]

    # Timed: the asyncio service free-running the same storm, writing
    # its real decision log so the identity check covers the wire
    # format, not just the in-memory events. Runs with the read model
    # enabled (``sse=True``) so the push path is part of the measured
    # loop and its latency is sampled.
    log = pathlib.Path(tempfile.mkdtemp(prefix="bench_service_")) / "log.jsonl"
    async_loop = _make_loop(world, engine, trigger, hours)
    service = ControlPlaneService(
        async_loop, ticks, http=False, decision_log=log,
        handle_signals=False, sse=True,
    )
    t0 = time.perf_counter()
    asyncio.run(service.run())
    wall_s = time.perf_counter() - t0

    identical = log.read_text().splitlines() == serial_log

    lat = sorted(service.decide_wall_s)
    push = sorted(service.readmodel.push_latency_s)
    push_p99_ms = _percentile(push, 0.99) * 1e3
    staleness = _staleness(ticks, serial_events, trigger.max_staleness_s)
    decisions = async_loop.decisions
    return {
        "hours": hours,
        "ticks": service.ticks_processed,
        "decisions": decisions,
        "wall_s": wall_s,
        "decisions_per_s": decisions / wall_s if wall_s > 0 else 0.0,
        "p50_decision_ms": _percentile(lat, 0.50) * 1e3,
        "p99_decision_ms": _percentile(lat, 0.99) * 1e3,
        "p50_push_ms": _percentile(push, 0.50) * 1e3,
        "p99_push_ms": push_p99_ms,
        "p50_staleness_s": staleness["p50_s"],
        "p99_staleness_s": staleness["p99_s"],
        "max_staleness_s": staleness["max_s"],
        "staleness_within_policy": staleness["within_policy"],
        "serial_async_identical": identical,
        "meets_criterion": (
            identical
            and staleness["within_policy"]
            and decisions / wall_s >= CRITERIA["decisions_per_s_min"]
            and push_p99_ms <= CRITERIA["push_p99_ms_max"]
        ),
    }


def _resume_case(quick: bool) -> dict:
    """Kill the service mid-storm, resume, diff the merged log."""
    import tempfile

    from repro.service import (
        ControlPlaneService,
        load_service_checkpoint,
        restore_loop,
        run_serial,
        truncate_jsonl,
    )

    hours = 4 if quick else 8
    world, engine, ticks, trigger = _storm(hours, 12, seed=5)
    reference = [
        e.to_json()
        for e in run_serial(_make_loop(world, engine, trigger, hours), ticks)
    ]

    tmp = pathlib.Path(tempfile.mkdtemp(prefix="bench_service_"))
    log, ckpt = tmp / "decisions.jsonl", tmp / "ckpt.json"
    cut = len(ticks) // 2
    service = ControlPlaneService(
        _make_loop(world, engine, trigger, hours), ticks,
        http=False, decision_log=log, checkpoint_path=ckpt,
        handle_signals=False,
    )

    async def _killed_run():
        async def killer():
            while service.ticks_processed < cut:
                await asyncio.sleep(0)
            service.request_stop()
        await asyncio.gather(service.run(), killer())

    asyncio.run(_killed_run())
    payload = load_service_checkpoint(ckpt)
    truncate_jsonl(log, payload["decisions_logged"])
    resumed = ControlPlaneService(
        restore_loop(engine, payload), ticks,
        http=False, decision_log=log, checkpoint_path=ckpt,
        start_tick=payload["next_tick"],
        decisions_logged=payload["decisions_logged"],
        handle_signals=False,
    )
    asyncio.run(resumed.run())
    merged = log.read_text().splitlines()
    identical = merged == reference
    return {
        "hours": hours,
        "killed_at_tick": cut,
        "decisions": len(reference),
        "merged_log_identical": identical,
        "meets_criterion": identical,
    }


def _shard_spec(hours: int, ticks_per_hour: int) -> dict:
    sites = 8
    return {
        "world": {"kind": "scaled", "sites": sites, "policy": 1, "seed": 7},
        "source": {
            "kind": "bursty", "ticks_per_hour": ticks_per_hour,
            "hours": hours, "seed": 11, "ca2": 6.0, "price_jitter": 0.04,
            "sites": [f"DC{i + 1}" for i in range(sites)],
        },
        "strategy": "capping",
        "trigger": {
            "lambda_delta": 0.02, "price_delta": 0.02,
            "debounce_s": 60.0, "max_staleness_s": 900.0,
        },
        "degradation": None,
        "horizon": hours,
        "monthly_budget": 4_000_000.0,
    }


def _shard_scaling_case(quick: bool) -> dict:
    """1-worker vs 4-worker sharded plane over an 8-region fleet.

    Byte-identity of the merged decision logs is unconditional. The
    ≥2× aggregate-throughput floor only applies with ≥4 cores — a
    single-core runner cannot speed anything up by forking, so the
    check records ``speedup_skipped`` with the reason instead.
    """
    import tempfile

    from repro.service import ShardedControlPlane

    hours = 6 if quick else 12
    ticks_per_hour = 30 if quick else 60
    spec = _shard_spec(hours, ticks_per_hour)
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="bench_shard_"))

    arms = {}
    logs = {}
    regions = None
    errors = False
    for workers in SHARD_WORKERS:
        log = tmp / f"w{workers}.jsonl"
        svc = ShardedControlPlane(
            spec, workers=workers, decision_log=log,
            http=False, handle_signals=False,
        )
        t0 = time.perf_counter()
        summary = svc.run()
        wall_s = time.perf_counter() - t0
        regions = len(svc.regions)
        errors = errors or bool(summary["worker_errors"])
        logs[workers] = log
        dps = summary["decisions"] / wall_s if wall_s > 0 else 0.0
        arms[str(workers)] = {
            "workers": workers,
            "decisions": summary["decisions"],
            "wall_s": wall_s,
            "decisions_per_s": dps,
            "decisions_per_s_per_worker": dps / workers,
        }

    base, wide = (arms[str(w)] for w in SHARD_WORKERS)
    speedup = (
        wide["decisions_per_s"] / base["decisions_per_s"]
        if base["decisions_per_s"] > 0 else 0.0
    )
    identical = (
        logs[SHARD_WORKERS[0]].read_text() == logs[SHARD_WORKERS[1]].read_text()
    )

    cores = os.cpu_count() or 1
    gate = cores >= CRITERIA["shard_min_cores"]
    return {
        "hours": hours,
        "regions": regions,
        "arms": arms,
        "speedup": speedup,
        "merged_logs_identical": identical,
        "speedup_skipped": (
            None if gate else
            f"cpu_count={cores} < {CRITERIA['shard_min_cores']}; "
            "speedup floor not applied"
        ),
        "meets_criterion": (
            identical
            and not errors
            and (not gate or speedup >= CRITERIA["shard_speedup_min"])
        ),
    }


def _slow_subscriber_case(quick: bool) -> dict:
    """A stalled stream subscriber must not slow the control loop.

    Two identical storms through the ``sse=True`` service: one with no
    subscribers (baseline), one with a bounded subscriber that never
    drains. The read model drops that subscriber's oldest records in
    O(1), so the loop's p99 decision latency must stay flat — the
    criterion allows a 2× ratio plus an absolute grace term because
    both numbers are single-digit milliseconds and jittery.
    """
    import tempfile

    from repro.service import ControlPlaneService

    hours = 4 if quick else 8
    world, engine, ticks, trigger = _storm(hours, 30, seed=9)

    def _run(stall: bool):
        log = pathlib.Path(tempfile.mkdtemp(prefix="bench_sub_")) / "log.jsonl"
        service = ControlPlaneService(
            _make_loop(world, engine, trigger, hours), ticks,
            http=False, decision_log=log, handle_signals=False, sse=True,
        )
        sub = service.readmodel.subscribe(maxlen=4) if stall else None
        asyncio.run(service.run())
        p99_ms = _percentile(sorted(service.decide_wall_s), 0.99) * 1e3
        dropped = sub.dropped if sub else 0
        return p99_ms, dropped

    baseline_p99_ms, _ = _run(stall=False)
    stalled_p99_ms, dropped = _run(stall=True)
    bound_ms = (
        baseline_p99_ms * CRITERIA["slow_subscriber_p99_factor_max"]
        + CRITERIA["slow_subscriber_p99_grace_ms"]
    )
    return {
        "hours": hours,
        "baseline_p99_decision_ms": baseline_p99_ms,
        "stalled_p99_decision_ms": stalled_p99_ms,
        "p99_bound_ms": bound_ms,
        "subscriber_dropped": dropped,
        # The stalled arm must actually have stalled (records dropped)
        # for the decoupling claim to mean anything.
        "meets_criterion": dropped > 0 and stalled_p99_ms <= bound_ms,
    }


def run_service_suite(quick: bool = False) -> dict:
    """Run all cases and return the BENCH_service.json payload."""
    import platform

    import numpy

    cases = {
        "tick_storm": _tick_storm_case(quick),
        "kill_resume": _resume_case(quick),
        "shard_scaling": _shard_scaling_case(quick),
        "slow_subscriber": _slow_subscriber_case(quick),
    }
    return {
        "benchmark": "service",
        "schema_version": 2,
        "quick": quick,
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
            "shard_workers": list(SHARD_WORKERS),
        },
        "cases": cases,
        "criteria": {
            **CRITERIA,
            "met": all(c["meets_criterion"] for c in cases.values()),
        },
    }


def _main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Streaming-control-plane load harness; writes "
        "BENCH_service.json at the repo root."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the storm for CI smoke runs (same JSON shape)",
    )
    parser.add_argument(
        "--out", default=str(BENCH_JSON), help="output path for the JSON"
    )
    args = parser.parse_args(argv)

    payload = run_service_suite(quick=args.quick)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out}")
    c = payload["cases"]["tick_storm"]
    print(
        f"  tick storm ({c['hours']}h, {c['ticks']} ticks): "
        f"{c['decisions']} decisions in {c['wall_s']:.2f}s "
        f"-> {c['decisions_per_s']:.1f}/s, "
        f"decide p50 {c['p50_decision_ms']:.1f}ms p99 "
        f"{c['p99_decision_ms']:.1f}ms, "
        f"push p50 {c['p50_push_ms']:.2f}ms p99 {c['p99_push_ms']:.2f}ms"
    )
    print(
        f"  staleness: p50 {c['p50_staleness_s']:.0f}s "
        f"p99 {c['p99_staleness_s']:.0f}s max {c['max_staleness_s']:.0f}s; "
        f"serial==async: {c['serial_async_identical']}"
    )
    c = payload["cases"]["kill_resume"]
    print(
        f"  kill/resume ({c['hours']}h): merged log identical: "
        f"{c['merged_log_identical']}"
    )
    c = payload["cases"]["shard_scaling"]
    per_arm = ", ".join(
        f"{a['workers']}w {a['decisions_per_s']:.0f}/s "
        f"({a['decisions_per_s_per_worker']:.0f}/s/worker)"
        for a in c["arms"].values()
    )
    note = f" [{c['speedup_skipped']}]" if c["speedup_skipped"] else ""
    print(
        f"  shard scaling ({c['regions']} regions): {per_arm}; "
        f"speedup {c['speedup']:.2f}x; logs identical: "
        f"{c['merged_logs_identical']}{note}"
    )
    c = payload["cases"]["slow_subscriber"]
    print(
        f"  slow subscriber: p99 {c['baseline_p99_decision_ms']:.1f}ms -> "
        f"{c['stalled_p99_decision_ms']:.1f}ms "
        f"(bound {c['p99_bound_ms']:.1f}ms, "
        f"{c['subscriber_dropped']} dropped)"
    )
    print(f"  criteria met: {payload['criteria']['met']}")
    return 0 if payload["criteria"]["met"] else 1


if __name__ == "__main__":
    raise SystemExit(_main())
