"""Ablation: weekly budget carryover on / off / with deficit claw-back.

The paper carries unused hourly budget forward within the week
(Figure 6's growing staircase). This ablation runs the tight-budget
month three ways:

* ``carryover`` (paper behaviour) — unused budget rolls forward;
* ``no-carryover`` — every hour gets only its base share;
* ``claw-back`` — carryover *and* deficits propagate (overspent
  mandatory-premium hours starve the rest of the week).

Carryover should dominate no-carryover on ordinary throughput at equal
budget discipline; claw-back should trade throughput for stricter
adherence.
"""

import pytest

from repro.experiments import PAPER_BUDGET_LEVELS

from conftest import BENCH_HOURS, monthly_budget_from, run_once

from _report import report, table


def test_ablation_carryover(benchmark, world, simulator, uncapped):
    monthly = monthly_budget_from(uncapped, world, PAPER_BUDGET_LEVELS["1.5M"])

    with_carry = run_once(
        benchmark,
        lambda: simulator.run_capping(
            world.budgeter(monthly, carryover=True), hours=BENCH_HOURS
        ),
    )
    without = simulator.run_capping(
        world.budgeter(monthly, carryover=False), hours=BENCH_HOURS
    )
    clawback = simulator.run_capping(
        world.budgeter(monthly, claw_back_deficit=True), hours=BENCH_HOURS
    )

    rows = [
        (
            name,
            f"{res.total_cost:,.0f}",
            f"{res.ordinary_throughput_fraction:.3f}",
            res.hours_over_budget,
        )
        for name, res in (
            ("carryover (paper)", with_carry),
            ("no carryover", without),
            ("carryover + claw-back", clawback),
        )
    ]
    report(
        "ablation_carryover",
        "budgeter carryover variants at the tight budget",
        table(("variant", "spend $", "ordinary", "over-budget h"), rows),
    )

    for res in (with_carry, without, clawback):
        assert res.premium_throughput_fraction > 1 - 1e-6

    # Carryover converts unused off-peak budget into peak-hour service.
    assert (
        with_carry.ordinary_throughput_fraction
        >= without.ordinary_throughput_fraction - 1e-9
    )
    # Claw-back is the most conservative: it can only reduce spending.
    assert clawback.total_cost <= with_carry.total_cost * 1.001
    assert (
        clawback.ordinary_throughput_fraction
        <= with_carry.ordinary_throughput_fraction + 1e-9
    )
