"""Figure 4: monthly bills under Pricing Policies 0-3.

The paper's Figure 4 compares the monthly bills of Cost Capping and the
Min-Only baselines under four pricing policies: Policy 0 (flat,
price-taker world), Policy 1 (PJM-5-bus steps), Policies 2/3 (doubled /
tripled increments). Claims reproduced:

* under Policy 0 all strategies pay the same (nothing to exploit);
* under Policies 1-3 Cost Capping is strictly cheaper;
* the gap grows with the steepness of the steps.
"""

import pytest

from repro.core import PriceMode
from repro.experiments import paper_world
from repro.sim import Simulator

from conftest import BENCH_HOURS

from _report import report, table

#: Shorter horizon: 4 policies x 3 strategies = 12 month simulations.
_HOURS = max(48, BENCH_HOURS // 3)


@pytest.fixture(scope="module")
def policy_results():
    out = {}
    for pid in (0, 1, 2, 3):
        w = paper_world(pid)
        sim = Simulator(w.sites, w.workload, w.mix)
        out[pid] = {
            "cc": sim.run_capping(hours=_HOURS).total_cost,
            "avg": sim.run_min_only(PriceMode.AVG, hours=_HOURS).total_cost,
            "low": sim.run_min_only(PriceMode.LOW, hours=_HOURS).total_cost,
        }
    return out


def test_fig4_policy_sweep(benchmark, policy_results):
    # Benchmark one representative strategy-month (the rest are cached).
    w = paper_world(1)
    sim = Simulator(w.sites, w.workload, w.mix)
    benchmark.pedantic(
        lambda: sim.run_capping(hours=min(48, _HOURS)), rounds=1, iterations=1
    )

    rows = []
    for pid, res in policy_results.items():
        saving = 1 - res["cc"] / res["avg"]
        rows.append(
            (
                f"Policy {pid}",
                f"{res['cc']:,.0f}",
                f"{res['avg']:,.0f}",
                f"{res['low']:,.0f}",
                f"{saving:.1%}",
            )
        )
    report(
        "fig4",
        f"bill over {_HOURS} h under Policies 0-3 ($)",
        table(("policy", "CostCapping", "MinOnly(Avg)", "MinOnly(Low)", "saving"), rows),
    )

    # -- shape assertions -------------------------------------------------------
    r0 = policy_results[0]
    # Policy 0: price takers and price makers coincide.
    assert r0["cc"] == pytest.approx(r0["avg"], rel=1e-6)
    assert r0["cc"] == pytest.approx(r0["low"], rel=1e-6)
    # Policies 1-3: capping strictly cheaper.
    savings = {}
    for pid in (1, 2, 3):
        res = policy_results[pid]
        assert res["cc"] < res["avg"]
        savings[pid] = 1 - res["cc"] / res["avg"]
    # The gap grows with step steepness (paper's log-scale bars).
    assert savings[1] < savings[2] < savings[3]
    # Everyone's bill grows with steeper pricing.
    assert (
        policy_results[0]["cc"]
        < policy_results[1]["cc"]
        < policy_results[2]["cc"]
        < policy_results[3]["cc"]
    )
