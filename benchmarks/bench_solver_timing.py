"""Section IV-C timing claim: the hourly MILP solves in milliseconds.

"for a large system with [1]3 data centers and 5 different pricing
levels, lp_solver consumes at most [1]2 millisecond[s] in an invocation
period of one hour to determine the optimal workload allocations with
up to 10^8 requests."

These are real microbenchmarks (many rounds): the hourly cost-min MILP
at 3 and 13 sites, the throughput-max MILP, the Min-Only LP, and one
DC-OPF dispatch. The on-line budget is an hour, so anything in
milliseconds leaves five orders of magnitude of headroom.
"""

import pytest

from repro.core import (
    CostMinimizer,
    MinOnlyDispatcher,
    PriceMode,
    ThroughputMaximizer,
    server_only_affine_slope,
)
from repro.powermarket import DcOpf, pjm5bus


@pytest.fixture(scope="module")
def site_hours_3(world):
    return [s.hour(40) for s in world.sites]


@pytest.fixture(scope="module")
def site_hours_13(world):
    # Replicate the three sites to 13 (the paper's large-system case),
    # perturbing backgrounds so the MILP cannot collapse symmetric sites.
    out = []
    t = 40
    for i in range(13):
        base = world.sites[i % 3].hour(t)
        out.append(
            type(base)(
                name=f"{base.name}-{i}",
                affine=base.affine,
                policy=base.policy,
                background_mw=base.background_mw * (0.9 + 0.02 * i),
                power_cap_mw=base.power_cap_mw,
                max_rate_rps=base.max_rate_rps,
            )
        )
    return out


def _offered(world, fraction=0.5):
    return fraction * sum(sh.max_throughput_rps() for sh in world.datacenters)


def test_cost_min_3_sites(benchmark, world, site_hours_3):
    lam = 0.5 * sum(sh.max_rate_rps for sh in site_hours_3)
    solver = CostMinimizer()
    result = benchmark(lambda: solver.solve(site_hours_3, lam))
    assert result.predicted_cost > 0


def test_cost_min_13_sites(benchmark, site_hours_13):
    lam = 0.5 * sum(sh.max_rate_rps for sh in site_hours_13)
    solver = CostMinimizer()
    result = benchmark(lambda: solver.solve(site_hours_13, lam))
    assert result.predicted_cost > 0


def test_throughput_max_3_sites(benchmark, world, site_hours_3):
    lam = 0.5 * sum(sh.max_rate_rps for sh in site_hours_3)
    cost = CostMinimizer().solve(site_hours_3, lam).predicted_cost
    solver = ThroughputMaximizer()
    result = benchmark(lambda: solver.solve(site_hours_3, lam, cost * 0.7))
    assert result.served_total_rps > 0


def test_min_only_lp(benchmark, world, site_hours_3):
    lam = 0.5 * sum(sh.max_rate_rps for sh in site_hours_3)
    disp = MinOnlyDispatcher(
        price_mode=PriceMode.AVG,
        server_slopes={
            dc.name: server_only_affine_slope(dc) for dc in world.datacenters
        },
    )
    result = benchmark(lambda: disp.solve(site_hours_3, lam))
    assert result.predicted_cost > 0


def test_dcopf_dispatch(benchmark, world):
    opf = DcOpf(pjm5bus())
    loads = {b: 240.0 for b in ("B", "C", "D")}
    result = benchmark(lambda: opf.dispatch(loads))
    assert result.feasible


def test_cost_min_own_branch_bound(benchmark, world, site_hours_3):
    # The fully self-contained stack (own B&B over HiGHS LP nodes).
    lam = 0.5 * sum(sh.max_rate_rps for sh in site_hours_3)
    solver = CostMinimizer(backend="branch-bound")
    result = benchmark(lambda: solver.solve(site_hours_3, lam))
    assert result.predicted_cost > 0
