"""Section IV-C timing claim: the hourly MILP solves in milliseconds.

"for a large system with [1]3 data centers and 5 different pricing
levels, lp_solver consumes at most [1]2 millisecond[s] in an invocation
period of one hour to determine the optimal workload allocations with
up to 10^8 requests."

These are real microbenchmarks (many rounds): the hourly cost-min MILP
at 3 and 13 sites, the throughput-max MILP, the Min-Only LP, and one
DC-OPF dispatch. The on-line budget is an hour, so anything in
milliseconds leaves five orders of magnitude of headroom.

Run as a script — ``PYTHONPATH=src python benchmarks/bench_solver_timing.py
[--quick]`` — to produce the machine-readable perf baseline
``BENCH_solver.json`` at the repo root: the repeated-hour cost-min MILP
with and without the compiled-model cache, branch-and-bound node
throughput with and without warm starts, at 3 and 13 sites, plus the
large-fleet dispatch cases (50/200/1000 sites through the region
decomposition, against a monolithic reference where affordable) and the
decomposition-vs-monolithic equivalence check. CI runs the quick mode
and validates only the JSON shape, never absolute timings.
"""

import json
import pathlib
import time

import pytest

from repro.core import (
    CostMinimizer,
    MinOnlyDispatcher,
    PriceMode,
    ThroughputMaximizer,
    server_only_affine_slope,
)
from repro.powermarket import DcOpf, pjm5bus

#: Where the machine-readable baseline lands (repo root).
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_solver.json"


def _replicate_13(world, t: int):
    """The paper's large-system case: three sites replicated to 13.

    Backgrounds are perturbed so the MILP cannot collapse symmetric
    sites.
    """
    out = []
    for i in range(13):
        base = world.sites[i % 3].hour(t)
        out.append(
            type(base)(
                name=f"{base.name}-{i}",
                affine=base.affine,
                policy=base.policy,
                background_mw=base.background_mw * (0.9 + 0.02 * i),
                power_cap_mw=base.power_cap_mw,
                max_rate_rps=base.max_rate_rps,
            )
        )
    return out


def _replicate_n(world, n_sites: int, t: int):
    """A large synthetic fleet: the 3-site world tiled to ``n_sites``.

    Sites keep their source's pricing policy object, so the fleet has
    three market "regions" with many co-located sites each — the shape
    the decomposition solver's region packing exploits. Backgrounds are
    perturbed (bounded, so 1000 sites stay physical) to break symmetry.
    """
    out = []
    for i in range(n_sites):
        base = world.sites[i % 3].hour(t)
        out.append(
            type(base)(
                name=f"{base.name}-{i}",
                affine=base.affine,
                policy=base.policy,
                background_mw=base.background_mw * (0.85 + 0.003 * (i % 100)),
                power_cap_mw=base.power_cap_mw,
                max_rate_rps=base.max_rate_rps,
            )
        )
    return out


@pytest.fixture(scope="module")
def site_hours_3(world):
    return [s.hour(40) for s in world.sites]


@pytest.fixture(scope="module")
def site_hours_13(world):
    return _replicate_13(world, 40)


def _offered(world, fraction=0.5):
    return fraction * sum(sh.max_throughput_rps() for sh in world.datacenters)


def test_cost_min_3_sites(benchmark, world, site_hours_3):
    lam = 0.5 * sum(sh.max_rate_rps for sh in site_hours_3)
    solver = CostMinimizer()
    result = benchmark(lambda: solver.solve(site_hours_3, lam))
    assert result.predicted_cost > 0


def test_cost_min_13_sites(benchmark, site_hours_13):
    lam = 0.5 * sum(sh.max_rate_rps for sh in site_hours_13)
    solver = CostMinimizer()
    result = benchmark(lambda: solver.solve(site_hours_13, lam))
    assert result.predicted_cost > 0


def test_throughput_max_3_sites(benchmark, world, site_hours_3):
    lam = 0.5 * sum(sh.max_rate_rps for sh in site_hours_3)
    cost = CostMinimizer().solve(site_hours_3, lam).predicted_cost
    solver = ThroughputMaximizer()
    result = benchmark(lambda: solver.solve(site_hours_3, lam, cost * 0.7))
    assert result.served_total_rps > 0


def test_min_only_lp(benchmark, world, site_hours_3):
    lam = 0.5 * sum(sh.max_rate_rps for sh in site_hours_3)
    disp = MinOnlyDispatcher(
        price_mode=PriceMode.AVG,
        server_slopes={
            dc.name: server_only_affine_slope(dc) for dc in world.datacenters
        },
    )
    result = benchmark(lambda: disp.solve(site_hours_3, lam))
    assert result.predicted_cost > 0


def test_dcopf_dispatch(benchmark, world):
    opf = DcOpf(pjm5bus())
    loads = {b: 240.0 for b in ("B", "C", "D")}
    result = benchmark(lambda: opf.dispatch(loads))
    assert result.feasible


def test_cost_min_own_branch_bound(benchmark, world, site_hours_3):
    # The fully self-contained stack (own B&B over HiGHS LP nodes).
    lam = 0.5 * sum(sh.max_rate_rps for sh in site_hours_3)
    solver = CostMinimizer(backend="branch-bound")
    result = benchmark(lambda: solver.solve(site_hours_3, lam))
    assert result.predicted_cost > 0


def test_cost_min_3_sites_scipy(benchmark, world, site_hours_3):
    # Cold-path contrast for the default (cached + warm) case above.
    lam = 0.5 * sum(sh.max_rate_rps for sh in site_hours_3)
    solver = CostMinimizer(backend="scipy")
    result = benchmark(lambda: solver.solve(site_hours_3, lam))
    assert result.predicted_cost > 0


def test_cost_min_13_sites_scipy(benchmark, site_hours_13):
    lam = 0.5 * sum(sh.max_rate_rps for sh in site_hours_13)
    solver = CostMinimizer(backend="scipy")
    result = benchmark(lambda: solver.solve(site_hours_13, lam))
    assert result.predicted_cost > 0


# ---------------------------------------------------------------------------
# Standalone perf baseline: BENCH_solver.json
# ---------------------------------------------------------------------------

#: Acceptance floors the baseline is judged against (see ARCHITECTURE.md,
#: "Performance"). CI checks only the JSON shape; these ratios are for
#: humans and for the repo's own perf tracking on a quiet machine.
CRITERIA = {
    "model_cache_speedup_min": 3.0,
    "warm_node_speedup_min": 2.0,
    # Large-fleet dispatch (the decomposition path): a 200-site hourly
    # cost-min must land well inside the hourly control period.
    "hour_latency_max_s": 2.0,
    # Decomposition vs monolithic agreement, everywhere both run.
    "equivalence_rel_gap_max": 1e-3,
}

#: First simulated hour of the repeated-hour sequences. Offset from 0 so
#: backgrounds are mid-trace (every hour has a distinct demand pattern).
_T0 = 24


def _hours_at(world, n_sites: int, t: int):
    if n_sites == 3:
        return [s.hour(t) for s in world.sites]
    if n_sites == 13:
        return _replicate_13(world, t)
    return _replicate_n(world, n_sites, t)


def _cost_min_sf(site_hours, lam):
    """The cost-min MILP in standard form (what B&B actually consumes)."""
    from repro.core.dispatch_model import RATE_SCALE, build_dispatch_model

    dm = build_dispatch_model(site_hours, name="cost-min", step_margin_frac=0.01)
    dm.model.add(dm.total_rate_scaled == lam / RATE_SCALE, name="serve_all")
    dm.model.minimize(dm.total_cost)
    return dm.model.to_standard_form()


def _repeated_hour_case(world, n_sites: int, n_hours: int, passes: int) -> dict:
    """Repeated-hour cost-min: cold rebuild+solve vs cached patch+warm solve.

    Cold and hot run the *same* engine (own B&B over the dense simplex),
    so the ratio isolates what the model cache + warm starts buy. SciPy
    is timed too, as the external reference point. Each variant sweeps
    the hour sequence ``passes`` times and keeps the fastest sweep —
    min-of-N is the standard guard against scheduler noise at the
    millisecond scale, and it reports the steady state (the hot path's
    first sweep pays the one-time compile).
    """
    from repro.solver import BranchBoundSolver, SimplexSolver

    hour_list = [_hours_at(world, n_sites, _T0 + i) for i in range(n_hours)]
    lams = [0.5 * sum(sh.max_rate_rps for sh in hours) for hours in hour_list]

    def run(make_solver) -> float:
        best = float("inf")
        for _ in range(passes):
            t0 = time.perf_counter()
            for hours, lam in zip(hour_list, lams):
                make_solver().solve(hours, lam)
            best = min(best, time.perf_counter() - t0)
        return best

    # Cold: a fresh minimizer + cold B&B per hour — nothing carries over.
    cold_s = run(
        lambda: CostMinimizer(
            backend=BranchBoundSolver(lp_solver=SimplexSolver(), warm_start=False)
        )
    )
    # Hot: one default minimizer across the sequence (compiled-model
    # cache + warm-started B&B, exactly what the Simulator holds).
    hot = CostMinimizer()
    hot_s = run(lambda: hot)
    scipy_s = run(lambda: CostMinimizer(backend="scipy"))

    speedup = cold_s / hot_s if hot_s > 0 else float("inf")
    return {
        "sites": n_sites,
        "hours": n_hours,
        "cold_ms_per_hour": 1e3 * cold_s / n_hours,
        "hot_ms_per_hour": 1e3 * hot_s / n_hours,
        "scipy_ms_per_hour": 1e3 * scipy_s / n_hours,
        "model_cache_speedup": speedup,
        "meets_criterion": speedup >= CRITERIA["model_cache_speedup_min"],
    }


def _node_throughput_case(world, n_sites: int, reps: int) -> dict:
    """B&B node throughput (nodes/s) on one cost-min MILP, cold vs warm."""
    from repro.solver import BranchBoundSolver, SimplexSolver

    site_hours = _hours_at(world, n_sites, 40)
    lam = 0.5 * sum(sh.max_rate_rps for sh in site_hours)
    sf = _cost_min_sf(site_hours, lam)

    cold_nodes, cold_s = 0, 0.0
    for _ in range(reps):
        solver = BranchBoundSolver(lp_solver=SimplexSolver(), warm_start=False)
        t0 = time.perf_counter()
        res = solver.solve(sf)
        cold_s += time.perf_counter() - t0
        cold_nodes += res.iterations

    warm = BranchBoundSolver(lp_solver=SimplexSolver(), warm_start=True)
    primed = warm.solve(sf)  # untimed: builds the root basis + incumbent
    warm_nodes, warm_s = 0, 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        res = warm.solve(sf, warm_x=primed.x)
        warm_s += time.perf_counter() - t0
        warm_nodes += res.iterations

    cold_rate = cold_nodes / cold_s if cold_s > 0 else float("inf")
    warm_rate = warm_nodes / warm_s if warm_s > 0 else float("inf")
    speedup = warm_rate / cold_rate if cold_rate > 0 else float("inf")
    return {
        "sites": n_sites,
        "reps": reps,
        "cold_nodes": cold_nodes,
        "warm_nodes": warm_nodes,
        "cold_nodes_per_s": cold_rate,
        "warm_nodes_per_s": warm_rate,
        "warm_node_speedup": speedup,
        "meets_criterion": speedup >= CRITERIA["warm_node_speedup_min"],
    }


def _large_fleet_case(
    world, n_sites: int, n_hours: int, passes: int, monolithic: bool
) -> dict:
    """Hourly cost-min dispatch at fleet scale via the decomposition path.

    Times the hot decomposed solve over a repeated-hour sequence (warm
    multipliers carry over, exactly like the Simulator's usage). Where a
    monolithic reference is still affordable (``monolithic=True``) the
    same hours are solved by SciPy/HiGHS and the worst per-hour cost gap
    is recorded; past that scale only the per-hour latency is judged.
    """
    hour_list = [_hours_at(world, n_sites, _T0 + i) for i in range(n_hours)]
    lams = [0.5 * sum(sh.max_rate_rps for sh in hours) for hours in hour_list]

    def run(solver):
        best, costs = float("inf"), []
        for _ in range(passes):
            t0 = time.perf_counter()
            costs = [
                solver.solve(hours, lam).predicted_cost
                for hours, lam in zip(hour_list, lams)
            ]
            best = min(best, time.perf_counter() - t0)
        return best, costs

    dec_s, dec_costs = run(CostMinimizer(solver_backend="decomposition"))
    case = {
        "sites": n_sites,
        "hours": n_hours,
        "decomposed_ms_per_hour": 1e3 * dec_s / n_hours,
        "hour_latency_s": dec_s / n_hours,
    }
    ok = True
    if monolithic:
        mono_s, mono_costs = run(CostMinimizer(backend="scipy"))
        gap = max(
            abs(a - b) / max(abs(a), 1e-9)
            for a, b in zip(mono_costs, dec_costs)
        )
        case["monolithic_ms_per_hour"] = 1e3 * mono_s / n_hours
        case["cost_rel_gap_max"] = gap
        ok = ok and gap <= CRITERIA["equivalence_rel_gap_max"]
    if n_sites >= 200:
        ok = ok and dec_s / n_hours <= CRITERIA["hour_latency_max_s"]
    case["meets_criterion"] = ok
    return case


def _equivalence_case(world, n_hours: int) -> dict:
    """Decomposition vs monolithic on the paper-scale (<= 13 site) fleets.

    At these sizes the duality gap usually cannot be certified, so the
    decomposition-backed optimizers fall back to the monolithic solve —
    either way, every answer must match the plain optimizer within the
    0.1% equivalence tolerance, for both capping steps.
    """
    worst, n_cases = 0.0, 0
    for n_sites in (3, 13):
        mono_c, dec_c = CostMinimizer(), CostMinimizer(
            solver_backend="decomposition"
        )
        mono_t, dec_t = ThroughputMaximizer(), ThroughputMaximizer(
            solver_backend="decomposition"
        )
        for i in range(n_hours):
            hours = _hours_at(world, n_sites, _T0 + i)
            lam = 0.5 * sum(sh.max_rate_rps for sh in hours)
            ref = mono_c.solve(hours, lam).predicted_cost
            got = dec_c.solve(hours, lam).predicted_cost
            worst = max(worst, abs(ref - got) / max(abs(ref), 1e-9))
            budget = 0.7 * ref
            ref_t = mono_t.solve(hours, lam, budget).served_total_rps
            got_t = dec_t.solve(hours, lam, budget).served_total_rps
            worst = max(worst, abs(ref_t - got_t) / max(abs(ref_t), 1e-9))
            n_cases += 2
    return {
        "cases": n_cases,
        "worst_rel_gap": worst,
        "meets_criterion": worst <= CRITERIA["equivalence_rel_gap_max"],
    }


def run_timing_suite(quick: bool = False) -> dict:
    """Time the solver hot path and return the BENCH_solver.json payload.

    ``quick`` shrinks the hour sequences and repetition counts to what a
    CI smoke job can afford; the JSON shape is identical either way.
    """
    import platform

    import numpy
    import scipy

    from repro.experiments import paper_world

    world = paper_world(1, seed=7)
    n_hours = 4 if quick else 12
    reps = 1 if quick else 3
    passes = 2 if quick else 3
    n_hours_fleet = 2 if quick else 6
    passes_fleet = 1 if quick else 2

    cases = {
        "cost_min_3_sites": _repeated_hour_case(world, 3, n_hours, passes),
        "cost_min_13_sites": _repeated_hour_case(world, 13, n_hours, passes),
        "bb_nodes_3_sites": _node_throughput_case(world, 3, reps),
        "bb_nodes_13_sites": _node_throughput_case(world, 13, reps),
        "dispatch_50_sites": _large_fleet_case(
            world, 50, n_hours_fleet, passes_fleet, monolithic=True
        ),
        "dispatch_200_sites": _large_fleet_case(
            world, 200, n_hours_fleet, passes_fleet, monolithic=False
        ),
        "dispatch_1000_sites": _large_fleet_case(
            world, 1000, n_hours_fleet, passes_fleet, monolithic=False
        ),
        "decomposition_equivalence": _equivalence_case(world, n_hours_fleet),
    }
    return {
        "benchmark": "solver_timing",
        "schema_version": 2,
        "quick": quick,
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
        },
        "cases": cases,
        "criteria": {
            **CRITERIA,
            "met": all(c["meets_criterion"] for c in cases.values()),
        },
    }


def _main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Solver perf baseline; writes BENCH_solver.json at the "
        "repo root."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink sequences/reps for CI smoke runs (same JSON shape)",
    )
    parser.add_argument(
        "--out", default=str(BENCH_JSON), help="output path for the JSON"
    )
    args = parser.parse_args(argv)

    payload = run_timing_suite(quick=args.quick)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out}")
    for name, case in payload["cases"].items():
        if name.startswith("cost_min"):
            print(
                f"  {name}: cold {case['cold_ms_per_hour']:.1f} ms/h, "
                f"hot {case['hot_ms_per_hour']:.1f} ms/h, "
                f"scipy {case['scipy_ms_per_hour']:.1f} ms/h "
                f"-> {case['model_cache_speedup']:.1f}x"
            )
        elif name.startswith("bb_nodes"):
            print(
                f"  {name}: cold {case['cold_nodes_per_s']:.0f} nodes/s, "
                f"warm {case['warm_nodes_per_s']:.0f} nodes/s "
                f"-> {case['warm_node_speedup']:.1f}x"
            )
        elif name.startswith("dispatch"):
            mono = case.get("monolithic_ms_per_hour")
            extra = (
                f", monolithic {mono:.1f} ms/h, "
                f"gap {case['cost_rel_gap_max']:.2e}"
                if mono is not None else ""
            )
            print(
                f"  {name}: decomposed "
                f"{case['decomposed_ms_per_hour']:.1f} ms/h{extra}"
            )
        else:
            print(
                f"  {name}: {case['cases']} cases, worst rel gap "
                f"{case['worst_rel_gap']:.2e}"
            )
    print(f"criteria met: {payload['criteria']['met']}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(_main())
