"""Extension: heterogeneous (mixed-generation) fleets — Section IX.

Each site mixes two server generations ("repair, replacement, and
expansion"); the greedy efficiency-ordered local optimizer and the
piecewise-convex decision model handle the mix end to end. Shape
asserted: the pipeline's guarantees survive heterogeneity (premium
served, capping no worse than Min-Only), and the dispatcher exploits
the efficient pools — the realized bill per served request beats a
worst-case all-legacy fleet.
"""

import pytest

from repro.core import PriceMode
from repro.experiments import paper_world
from repro.sim import Simulator

from conftest import BENCH_HOURS

from _report import report, table

_HOURS = max(48, BENCH_HOURS // 3)
_SERVERS = 1_000_000


def test_ext_heterogeneous_fleets(benchmark):
    homo = paper_world(max_servers=_SERVERS)
    hetero = paper_world(max_servers=_SERVERS, heterogeneous=True)

    sim_homo = Simulator(homo.sites, homo.workload, homo.mix)
    sim_het = Simulator(hetero.sites, hetero.workload, hetero.mix)

    het_capping = benchmark.pedantic(
        lambda: sim_het.run_capping(hours=_HOURS), rounds=1, iterations=1
    )
    het_baseline = sim_het.run_min_only(PriceMode.AVG, hours=_HOURS)
    homo_capping = sim_homo.run_capping(hours=_HOURS)

    rows = [
        (
            name,
            f"{res.total_cost:,.0f}",
            f"{res.premium_throughput_fraction:.3%}",
        )
        for name, res in (
            ("homogeneous + capping", homo_capping),
            ("heterogeneous + capping", het_capping),
            ("heterogeneous + min-only", het_baseline),
        )
    ]
    savings = 1 - het_capping.total_cost / het_baseline.total_cost
    report(
        "ext_heterogeneous",
        f"mixed-generation fleets over {_HOURS} h",
        table(("configuration", "bill $", "premium"), rows)
        + ["", f"capping saves {savings:.1%} vs min-only on the mixed fleets"],
    )

    # Guarantees survive heterogeneity.
    assert het_capping.premium_throughput_fraction > 1 - 1e-9
    assert het_capping.ordinary_throughput_fraction > 1 - 1e-9
    # The price-maker advantage persists on mixed fleets.
    assert het_capping.total_cost < het_baseline.total_cost
    assert savings > 0.05
    # Same-capacity worlds: bills are in the same regime (the mixed
    # fleet shuffles efficiency between sites, not the totals).
    assert het_capping.total_cost == pytest.approx(
        homo_capping.total_cost, rel=0.5
    )
