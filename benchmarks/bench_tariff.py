"""Demand-charge tariff benchmark (``repro --tariff energy+demand``).

Runs the same capped month twice — settling the paper's energy-only
bill and an ``energy+demand`` tariff — and measures what the demand
charge's linearized peak term in the dispatch MILP buys: the capper
sees the projected incremental demand charge of any dispatch that would
raise the billing-cycle peak, so it shaves peaks whenever the energy
value of the extra ordinary load doesn't cover the demand charge it
would incur. Writes ``BENCH_tariff.json`` at the repo root (companion
of ``BENCH_service.json`` and friends). Tracked numbers:

* **peak shaving** — billing-cycle peak kW of the demand-aware run vs
  the energy-only run at the same (generous) budget. The acceptance
  floor is a ≥5% reduction; the observed effect is far larger because
  the first hours of a cycle price the *entire* fleet power as new
  peak, pushing the dispatcher to establish a low peak early.
* **bill vs demand-blind dispatch** — what the month would have cost
  if the energy-only dispatch were billed under the demand tariff
  (energy cost + penalty x its peak). Demand-aware dispatch must not
  settle a larger bill than demand-blind dispatch.
* **settlement identity** — the energy-only arm's per-hour settled
  bill equals its realized cost bit-for-bit (the tariff layer's
  default-identity contract), and the demand arm's incremental line
  items telescope exactly to ``penalty x cycle peak``.

Run as a script: ``PYTHONPATH=src python benchmarks/bench_tariff.py
[--quick]``. CI runs quick mode and validates the JSON shape.
"""

import json
import pathlib

#: Where the machine-readable baseline lands (repo root).
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_tariff.json"

#: Demand-charge rate of the benchmark arm, $ per kW of cycle peak.
#: Mild on purpose (real tariffs run $5-20/kW-month): the point is that
#: even a small peak price moves the dispatch, not that a punitive one
#: crushes it.
DEMAND_RATE_PER_KW = 0.5

#: Acceptance criteria. ``peak_reduction_min`` is the ISSUE's floor;
#: premium traffic is mandatory under the paper's model, so neither arm
#: may shed any of it while shaving.
CRITERIA = {
    "peak_reduction_min": 0.05,
    "premium_throughput_min": 1.0,
    "aware_bill_le_blind": True,
    "energy_identity_bitwise": True,
}


def _run_arm(tariff: str | None, monthly_budget: float | None, hours: int):
    """One capped month; every arm rebuilds the identical seeded world."""
    from repro.experiments import paper_world
    from repro.sim.engine import Engine

    world = paper_world(1, seed=7)
    engine = Engine(world.sites, world.workload, world.mix)
    budgeter = (
        world.budgeter(monthly_budget) if monthly_budget is not None else None
    )
    return engine.run("capping", budgeter=budgeter, hours=hours, tariff=tariff)


def _component_totals(result) -> dict:
    totals: dict[str, float] = {}
    for h in result.hours:
        for item in h.line_items:
            totals[item.component] = totals.get(item.component, 0.0) + item.amount
    return totals


def _peak_shaving_case(quick: bool) -> dict:
    """Energy-only vs demand-aware dispatch at the same generous budget.

    The budget is the run's own uncapped spend (fraction 1.0), so the
    energy-only arm dispatches essentially uncapped and its peak is the
    workload's natural peak — the honest baseline for the shaving
    claim. The cycle spans the whole run: one billing cycle, one peak.
    """
    hours = 24 if quick else 72
    from repro.experiments import paper_world

    world = paper_world(1, seed=7)
    anchor = _run_arm(None, None, hours)
    monthly_budget = anchor.total_cost * world.hours / hours

    spec = f"energy+demand:rate={DEMAND_RATE_PER_KW:g},cycle={hours}"
    energy = _run_arm(None, monthly_budget, hours)
    demand = _run_arm(spec, monthly_budget, hours)

    peak_energy_kw = max(h.total_power_mw for h in energy.hours) * 1e3
    peak_demand_kw = max(h.total_power_mw for h in demand.hours) * 1e3
    reduction = (peak_energy_kw - peak_demand_kw) / peak_energy_kw

    penalty_per_mw = DEMAND_RATE_PER_KW * 1e3
    # The energy-only dispatch billed under the demand tariff: its
    # energy cost plus the penalty on the peak it never tried to avoid.
    blind_bill = energy.total_cost + penalty_per_mw * peak_energy_kw / 1e3
    aware_bill = sum(h.settled_cost for h in demand.hours)

    s_energy, s_demand = energy.summary(), demand.summary()
    return {
        "hours": hours,
        "monthly_budget": monthly_budget,
        "tariff": spec,
        "peak_energy_only_kw": peak_energy_kw,
        "peak_demand_aware_kw": peak_demand_kw,
        "peak_reduction": reduction,
        "energy_only_bill": energy.total_cost,
        "demand_blind_bill": blind_bill,
        "demand_aware_bill": aware_bill,
        "demand_aware_components": _component_totals(demand),
        "premium_throughput": {
            "energy_only": s_energy["premium_throughput"],
            "demand_aware": s_demand["premium_throughput"],
        },
        "ordinary_throughput": {
            "energy_only": s_energy["ordinary_throughput"],
            "demand_aware": s_demand["ordinary_throughput"],
        },
        "meets_criterion": (
            reduction >= CRITERIA["peak_reduction_min"]
            and s_energy["premium_throughput"]
            >= CRITERIA["premium_throughput_min"]
            and s_demand["premium_throughput"]
            >= CRITERIA["premium_throughput_min"]
            and aware_bill <= blind_bill
        ),
    }


def _settlement_identity_case(quick: bool) -> dict:
    """The tariff layer's accounting contracts, checked exactly."""
    hours = 12 if quick else 24
    from repro.experiments import paper_world

    world = paper_world(1, seed=7)
    anchor = _run_arm(None, None, hours)
    monthly_budget = anchor.total_cost * world.hours / hours

    energy = _run_arm(None, monthly_budget, hours)
    energy_identity = all(
        len(h.line_items) == 1
        and h.line_items[0].component == "energy"
        and h.line_items[0].amount == h.realized_cost
        and h.settled_cost == h.realized_cost
        for h in energy.hours
    )

    spec = f"energy+demand:rate={DEMAND_RATE_PER_KW:g},cycle={hours}"
    demand = _run_arm(spec, monthly_budget, hours)
    cycle_peak_mw = max(h.total_power_mw for h in demand.hours)
    demand_total = _component_totals(demand).get("demand", 0.0)
    telescoped = DEMAND_RATE_PER_KW * 1e3 * cycle_peak_mw
    # Incremental billing telescopes: sum of per-hour increments equals
    # penalty x cycle peak up to float addition order.
    telescope_ok = abs(demand_total - telescoped) <= 1e-6 * max(telescoped, 1.0)

    return {
        "hours": hours,
        "energy_identity_bitwise": energy_identity,
        "demand_total": demand_total,
        "penalty_times_peak": telescoped,
        "telescope_exact": telescope_ok,
        "meets_criterion": energy_identity and telescope_ok,
    }


def run_tariff_suite(quick: bool = False) -> dict:
    """Run all cases and return the BENCH_tariff.json payload."""
    import os
    import platform

    import numpy

    cases = {
        "peak_shaving": _peak_shaving_case(quick),
        "settlement_identity": _settlement_identity_case(quick),
    }
    return {
        "benchmark": "tariff",
        "schema_version": 1,
        "quick": quick,
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
        },
        "cases": cases,
        "criteria": {
            **CRITERIA,
            "met": all(c["meets_criterion"] for c in cases.values()),
        },
    }


def _main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Demand-charge tariff benchmark; writes "
        "BENCH_tariff.json at the repo root."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the runs for CI smoke runs (same JSON shape)",
    )
    parser.add_argument(
        "--out", default=str(BENCH_JSON), help="output path for the JSON"
    )
    args = parser.parse_args(argv)

    payload = run_tariff_suite(quick=args.quick)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out}")
    c = payload["cases"]["peak_shaving"]
    print(
        f"  peak shaving ({c['hours']}h, {c['tariff']}): "
        f"{c['peak_energy_only_kw'] / 1e3:.1f} MW -> "
        f"{c['peak_demand_aware_kw'] / 1e3:.1f} MW "
        f"({c['peak_reduction']:.1%} reduction)"
    )
    print(
        f"  bills: energy-only ${c['energy_only_bill']:,.0f}, "
        f"demand-blind ${c['demand_blind_bill']:,.0f}, "
        f"demand-aware ${c['demand_aware_bill']:,.0f}"
    )
    c = payload["cases"]["settlement_identity"]
    print(
        f"  settlement identity ({c['hours']}h): energy bitwise "
        f"{c['energy_identity_bitwise']}, demand telescopes "
        f"{c['telescope_exact']} "
        f"(${c['demand_total']:,.0f} vs ${c['penalty_times_peak']:,.0f})"
    )
    print(f"  criteria met: {payload['criteria']['met']}")
    return 0 if payload["criteria"]["met"] else 1


if __name__ == "__main__":
    raise SystemExit(_main())
